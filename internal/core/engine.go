package core

// Context-aware query surface (the rsmi.Engine v2 API). A single RSMI
// executes each query on one goroutine in microseconds, so cancellation is
// observed at operation entry: a context that is already cancelled or past
// its deadline fails fast, and an in-flight single-index query runs to
// completion. The sharded engine (internal/shard) is where cancellation is
// observed *during* execution, between shard visits.

import (
	"context"

	"rsmi/internal/geom"
	"rsmi/internal/index"
)

// PointQueryContext is PointQuery honouring ctx at entry.
func (t *RSMI) PointQueryContext(ctx context.Context, q geom.Point) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return t.PointQuery(q), nil
}

// WindowQueryContext is WindowQuery honouring ctx at entry.
func (t *RSMI) WindowQueryContext(ctx context.Context, q geom.Rect) ([]geom.Point, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return t.WindowQuery(q), nil
}

// WindowQueryAppend appends the window answer to dst and returns the
// extended slice, so callers that reuse buffers across queries avoid the
// per-query result allocation. Semantics are exactly WindowQuery's.
func (t *RSMI) WindowQueryAppend(ctx context.Context, dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	return t.windowQueryAppend(dst, q), nil
}

// ExactWindowContext is ExactWindow honouring ctx at entry.
func (t *RSMI) ExactWindowContext(ctx context.Context, q geom.Rect) ([]geom.Point, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return t.ExactWindow(q), nil
}

// KNNContext is KNN honouring ctx at entry.
func (t *RSMI) KNNContext(ctx context.Context, q geom.Point, k int) ([]geom.Point, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return t.KNN(q, k), nil
}

// ExactKNNContext is ExactKNN honouring ctx at entry.
func (t *RSMI) ExactKNNContext(ctx context.Context, q geom.Point, k int) ([]geom.Point, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return t.ExactKNN(q, k), nil
}

// BatchPointQueryContext answers one point query per element of qs,
// observing ctx between elements.
func (t *RSMI) BatchPointQueryContext(ctx context.Context, qs []geom.Point) ([]bool, error) {
	out := make([]bool, len(qs))
	for i, q := range qs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = t.PointQuery(q)
	}
	return out, nil
}

// BatchWindowQueryContext answers one window query per element of qs,
// observing ctx between elements.
func (t *RSMI) BatchWindowQueryContext(ctx context.Context, qs []geom.Rect) ([][]geom.Point, error) {
	out := make([][]geom.Point, len(qs))
	for i, q := range qs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = t.WindowQuery(q)
	}
	return out, nil
}

// BatchKNNContext answers one kNN query per element of qs, observing ctx
// between elements.
func (t *RSMI) BatchKNNContext(ctx context.Context, qs []index.KNNQuery) ([][]geom.Point, error) {
	out := make([][]geom.Point, len(qs))
	for i, q := range qs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = t.KNN(q.Q, q.K)
	}
	return out, nil
}

// InsertContext is Insert honouring ctx at entry; an admitted insert always
// completes (a half-applied update would corrupt the index).
func (t *RSMI) InsertContext(ctx context.Context, p geom.Point) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t.Insert(p)
	return nil
}

// DeleteContext is Delete honouring ctx at entry.
func (t *RSMI) DeleteContext(ctx context.Context, p geom.Point) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return t.Delete(p), nil
}

// RebuildContext is Rebuild honouring ctx at entry; a started rebuild runs
// to completion (the single-index rebuild swaps state atomically at the
// end, so there is no safe point to abandon it).
func (t *RSMI) RebuildContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t.Rebuild()
	return nil
}
