package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rsmi/internal/dataset"
	"rsmi/internal/geom"
	"rsmi/internal/sfc"
	"rsmi/internal/store"
)

// Structural invariants of a freshly built RSMI. These are the properties
// the query algorithms rely on; they must hold for any data distribution,
// any seed, and any (sane) option combination.

// walkLeaves visits leaves left to right.
func walkLeaves(n *node, fn func(*node)) {
	if n == nil {
		return
	}
	if n.leaf {
		fn(n)
		return
	}
	for _, c := range n.children {
		walkLeaves(c, fn)
	}
}

// TestLeafBlockRangesPartitionStore: leaves own disjoint, consecutive,
// gap-free base block ranges in left-to-right order — the invariant behind
// global window scans.
func TestLeafBlockRangesPartitionStore(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kinds := dataset.All()
		pts := dataset.Generate(kinds[rng.Intn(len(kinds))], 500+rng.Intn(3000), seed)
		opts := Options{
			BlockCapacity:      5 + rng.Intn(30),
			PartitionThreshold: 100 + rng.Intn(500),
			LearningRate:       0.1,
			Epochs:             5 + rng.Intn(15),
			Seed:               seed,
		}
		idx := New(pts, opts)
		next := 0
		ok := true
		walkLeaves(idx.root, func(l *node) {
			if l.firstBlock != next || l.numBlocks < 1 {
				ok = false
			}
			next = l.firstBlock + l.numBlocks
		})
		return ok && next == idx.baseBlocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestBlockListOrderMatchesIDs: at build time, walking the block linked
// list from block 0 visits exactly the base blocks in id order.
func TestBlockListOrderMatchesIDs(t *testing.T) {
	pts := dataset.Generate(dataset.OSMLike, 4000, 3)
	idx := New(pts, testOptions())
	want := 0
	for cur := 0; cur != store.NilBlock; {
		b := idx.store.Peek(cur)
		if b.ID != want {
			t.Fatalf("list order broken: got block %d, want %d", b.ID, want)
		}
		want++
		cur = b.Next
	}
	if want != idx.baseBlocks {
		t.Fatalf("list covers %d of %d blocks", want, idx.baseBlocks)
	}
}

// TestNodeMBRsContainSubtrees: every node's MBR contains its children's
// MBRs and, at leaves, every live point — the invariant behind RSMIa.
func TestNodeMBRsContainSubtrees(t *testing.T) {
	pts := dataset.Generate(dataset.TigerLike, 5000, 4)
	idx := New(pts, testOptions())
	// Stress with updates too: MBRs must stay supersets.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		idx.Insert(geom.Pt(rng.Float64(), rng.Float64()))
	}
	var walk func(n *node) geom.Rect
	walk = func(n *node) geom.Rect {
		if n.leaf {
			covered := geom.EmptyRect()
			for id := n.firstBlock; id < n.firstBlock+n.numBlocks; id++ {
				for _, cid := range idx.store.Chain(idx.store.Peek(id)) {
					b := idx.store.Peek(cid)
					b.Points(func(p geom.Point) {
						covered = covered.ExtendPoint(p)
						if !n.mbr.Contains(p) {
							t.Errorf("leaf MBR %v misses %v", n.mbr, p)
						}
					})
				}
			}
			return covered
		}
		covered := geom.EmptyRect()
		for _, c := range n.children {
			if c == nil {
				continue
			}
			sub := walk(c)
			covered = covered.Union(sub)
			if !sub.IsEmpty() && !n.mbr.ContainsRect(sub) {
				t.Errorf("node MBR %v misses child content %v", n.mbr, sub)
			}
		}
		return covered
	}
	walk(idx.root)
}

// TestDescentMatchesBuildGrouping: for every indexed point, query-time
// descent reaches a leaf whose block range contains the point — the §3.2
// property that grouping by predictions makes routing exact.
func TestDescentMatchesBuildGrouping(t *testing.T) {
	pts := dataset.Generate(dataset.Skewed, 6000, 6)
	idx := New(pts, testOptions())
	for _, p := range pts {
		leaf, path := idx.descend(p)
		if leaf == nil {
			t.Fatalf("descent dead-ended for %v", p)
		}
		found := false
		for id := leaf.firstBlock; id < leaf.firstBlock+leaf.numBlocks && !found; id++ {
			for _, cid := range idx.store.Chain(idx.store.Peek(id)) {
				if idx.store.Peek(cid).Find(p) >= 0 {
					found = true
					break
				}
			}
		}
		if !found {
			t.Fatalf("point %v not stored under its descent leaf [%d,%d)",
				p, leaf.firstBlock, leaf.firstBlock+leaf.numBlocks)
		}
		if len(path) > maxDepth {
			t.Fatalf("descent depth %d exceeds maxDepth", len(path))
		}
	}
}

// TestModelCountMatchesStats: the walk-based stats agree with the build
// counters.
func TestModelCountMatchesStats(t *testing.T) {
	pts := dataset.Generate(dataset.Normal, 4000, 7)
	idx := New(pts, testOptions())
	count := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		count++
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(idx.root)
	if count != idx.models {
		t.Errorf("walked %d models, counter says %d", count, idx.models)
	}
	leafPoints := 0
	walkLeaves(idx.root, func(l *node) { leafPoints += l.points })
	if leafPoints != idx.n {
		t.Errorf("leaf point counters sum to %d, n = %d", leafPoints, idx.n)
	}
}

// TestWindowSubsetOfExact: the approximate window answer is always a subset
// of the exact answer (no false positives relative to RSMIa).
func TestWindowSubsetOfExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := dataset.Generate(dataset.Skewed, 1500, seed)
		idx := New(pts, Options{
			BlockCapacity:      20,
			PartitionThreshold: 400,
			LearningRate:       0.1,
			Epochs:             10,
			Seed:               seed,
		})
		for i := 0; i < 10; i++ {
			q := geom.RectAround(
				geom.Pt(rng.Float64(), rng.Float64()),
				0.2*rng.Float64(), 0.2*rng.Float64())
			exact := make(map[geom.Point]bool)
			for _, p := range idx.ExactWindow(q) {
				exact[p] = true
			}
			for _, p := range idx.WindowQuery(q) {
				if !exact[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestOversizedLeafFallback: a partition threshold below the block capacity
// still builds a correct index (forced-leaf path).
func TestOversizedLeafFallback(t *testing.T) {
	pts := dataset.Generate(dataset.Uniform, 1000, 8)
	idx := New(pts, Options{
		BlockCapacity:      100,
		PartitionThreshold: 50, // below B: grid order clamps to 1
		LearningRate:       0.1,
		Epochs:             10,
		Seed:               1,
	})
	for _, p := range pts {
		if !idx.PointQuery(p) {
			t.Fatalf("point %v lost under tiny threshold", p)
		}
	}
}

// knnHeap unit tests: the bounded max-heap at the centre of Algorithm 3.
func TestKNNHeapBasics(t *testing.T) {
	q := geom.Pt(0, 0)
	h := newKNNHeap(3, q)
	if h.worst() != h.worst() || h.Len() != 0 {
		t.Fatal("fresh heap broken")
	}
	pts := []geom.Point{{X: 5, Y: 0}, {X: 1, Y: 0}, {X: 3, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 0}}
	for _, p := range pts {
		h.offer(p)
	}
	if h.Len() != 3 {
		t.Fatalf("heap len = %d, want 3", h.Len())
	}
	got := h.sorted()
	want := []float64{1, 2, 3}
	for i, p := range got {
		if p.X != want[i] {
			t.Fatalf("sorted[%d] = %v, want x=%v", i, p, want[i])
		}
	}
}

func TestKNNHeapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := geom.Pt(rng.Float64(), rng.Float64())
		k := 1 + rng.Intn(20)
		h := newKNNHeap(k, q)
		var all []geom.Point
		n := k + rng.Intn(100)
		for i := 0; i < n; i++ {
			p := geom.Pt(rng.Float64(), rng.Float64())
			all = append(all, p)
			h.offer(p)
		}
		got := h.sorted()
		// Compare against a full sort.
		type dp struct {
			d float64
			p geom.Point
		}
		ds := make([]dp, len(all))
		for i, p := range all {
			ds[i] = dp{q.Dist2(p), p}
		}
		for i := 1; i < len(ds); i++ {
			for j := i; j > 0 && ds[j].d < ds[j-1].d; j-- {
				ds[j], ds[j-1] = ds[j-1], ds[j]
			}
		}
		if len(got) != min(k, n) {
			return false
		}
		for i := range got {
			if q.Dist2(got[i]) != ds[i].d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestCurveOptionsProduceDifferentOrders: Hilbert and Z orderings must not
// silently collapse into the same structure.
func TestCurveOptionsProduceDifferentOrders(t *testing.T) {
	pts := dataset.Generate(dataset.Uniform, 2000, 9)
	h := New(pts, Options{BlockCapacity: 20, PartitionThreshold: 500, Epochs: 5, LearningRate: 0.1, Seed: 1, Curve: sfc.Hilbert})
	z := New(pts, Options{BlockCapacity: 20, PartitionThreshold: 500, Epochs: 5, LearningRate: 0.1, Seed: 1, Curve: sfc.Z})
	// Different groupings may yield different block counts; when they
	// coincide, the contents of the first block must still differ because
	// the orderings differ.
	if h.store.NumBlocks() != z.store.NumBlocks() {
		return
	}
	var hp, zp []geom.Point
	h.store.Peek(0).Points(func(p geom.Point) { hp = append(hp, p) })
	z.store.Peek(0).Points(func(p geom.Point) { zp = append(zp, p) })
	same := len(hp) == len(zp)
	if same {
		for i := range hp {
			if hp[i] != zp[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("Hilbert and Z orderings produced identical block 0")
	}
}
