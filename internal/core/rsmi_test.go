package core

import (
	"math"
	"testing"

	"rsmi/internal/dataset"
	"rsmi/internal/geom"
	"rsmi/internal/index"
	"rsmi/internal/sfc"
	"rsmi/internal/store"
	"rsmi/internal/workload"
)

// testOptions returns options scaled for fast unit tests: small blocks and
// partitions, short training. Correctness must not depend on training
// quality, so low epoch counts also exercise the error-bound machinery.
func testOptions() Options {
	return Options{
		BlockCapacity:      20,
		PartitionThreshold: 500,
		LearningRate:       0.1,
		Epochs:             40,
		Seed:               1,
	}
}

func buildTest(t *testing.T, kind dataset.Kind, n int) (*RSMI, []geom.Point) {
	t.Helper()
	pts := dataset.Generate(kind, n, 7)
	return New(pts, testOptions()), pts
}

func TestPointQueryNoFalseNegatives(t *testing.T) {
	for _, kind := range dataset.All() {
		t.Run(kind.String(), func(t *testing.T) {
			idx, pts := buildTest(t, kind, 3000)
			if idx.Len() != len(pts) {
				t.Fatalf("Len = %d, want %d", idx.Len(), len(pts))
			}
			for i, p := range pts {
				if !idx.PointQuery(p) {
					t.Fatalf("point %d (%v) not found: false negative", i, p)
				}
			}
		})
	}
}

func TestPointQueryAbsentPoints(t *testing.T) {
	idx, _ := buildTest(t, dataset.Skewed, 2000)
	absents := []geom.Point{
		geom.Pt(-0.5, 0.5), geom.Pt(2, 2), geom.Pt(0.123456789, 0.987654321),
	}
	for _, p := range absents {
		if idx.PointQuery(p) {
			t.Errorf("absent point %v reported found", p)
		}
	}
}

func TestWindowQueryNoFalsePositives(t *testing.T) {
	idx, pts := buildTest(t, dataset.Normal, 3000)
	ws := workload.Windows(pts, 100, 0.01, 1, 3)
	for _, w := range ws {
		for _, p := range idx.WindowQuery(w) {
			if !w.Contains(p) {
				t.Fatalf("false positive %v for window %v", p, w)
			}
		}
	}
}

func TestWindowQueryRecall(t *testing.T) {
	for _, kind := range dataset.All() {
		t.Run(kind.String(), func(t *testing.T) {
			idx, pts := buildTest(t, kind, 4000)
			oracle := index.NewLinear(pts)
			ws := workload.Windows(pts, 100, 0.01, 1, 4)
			var total float64
			for _, w := range ws {
				got := idx.WindowQuery(w)
				want := oracle.WindowQuery(w)
				total += index.Recall(got, want)
			}
			avg := total / float64(len(ws))
			// The paper reports > 87% with full training; the test floor is
			// lower because test training is deliberately brief.
			if avg < 0.70 {
				t.Errorf("average window recall = %.3f, want >= 0.70", avg)
			}
		})
	}
}

func TestExactWindowMatchesOracle(t *testing.T) {
	for _, kind := range []dataset.Kind{dataset.Uniform, dataset.Skewed, dataset.OSMLike} {
		t.Run(kind.String(), func(t *testing.T) {
			idx, pts := buildTest(t, kind, 3000)
			oracle := index.NewLinear(pts)
			exact := idx.AsExact()
			ws := workload.Windows(pts, 60, 0.02, 2, 5)
			for _, w := range ws {
				got := exact.WindowQuery(w)
				want := oracle.WindowQuery(w)
				if index.Recall(got, want) != 1 || len(got) != len(want) {
					t.Fatalf("exact window mismatch for %v: got %d wanted %d",
						w, len(got), len(want))
				}
			}
		})
	}
}

func TestKNNApproximate(t *testing.T) {
	idx, pts := buildTest(t, dataset.Skewed, 4000)
	oracle := index.NewLinear(pts)
	qs := workload.KNNPoints(pts, 60, 6)
	var total float64
	for _, q := range qs {
		got := idx.KNN(q, 10)
		if len(got) != 10 {
			t.Fatalf("kNN returned %d points, want 10", len(got))
		}
		for i := 1; i < len(got); i++ {
			if q.Dist2(got[i-1]) > q.Dist2(got[i]) {
				t.Fatal("kNN result not sorted by distance")
			}
		}
		total += index.KNNRecall(got, oracle.KNN(q, 10), q)
	}
	if avg := total / float64(len(qs)); avg < 0.75 {
		t.Errorf("average kNN recall = %.3f, want >= 0.75", avg)
	}
}

func TestKNNReturnsOnlyIndexedPoints(t *testing.T) {
	idx, pts := buildTest(t, dataset.Uniform, 1000)
	set := make(map[geom.Point]struct{}, len(pts))
	for _, p := range pts {
		set[p] = struct{}{}
	}
	for _, q := range workload.KNNPoints(pts, 20, 7) {
		for _, p := range idx.KNN(q, 5) {
			if _, ok := set[p]; !ok {
				t.Fatalf("kNN returned non-indexed point %v", p)
			}
		}
	}
}

func TestExactKNNMatchesOracle(t *testing.T) {
	idx, pts := buildTest(t, dataset.OSMLike, 3000)
	oracle := index.NewLinear(pts)
	exact := idx.AsExact()
	for _, q := range workload.KNNPoints(pts, 40, 8) {
		for _, k := range []int{1, 5, 25} {
			got := exact.KNN(q, k)
			want := oracle.KNN(q, k)
			if len(got) != len(want) {
				t.Fatalf("exact kNN size %d, want %d", len(got), len(want))
			}
			for i := range got {
				// Distances must match exactly (ties may reorder points).
				if math.Abs(q.Dist2(got[i])-q.Dist2(want[i])) > 1e-15 {
					t.Fatalf("exact kNN distance mismatch at %d: %v vs %v",
						i, q.Dist2(got[i]), q.Dist2(want[i]))
				}
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	idx, pts := buildTest(t, dataset.Uniform, 800)
	q := geom.Pt(0.5, 0.5)
	if got := idx.KNN(q, 0); got != nil {
		t.Error("k=0 must return nil")
	}
	if got := idx.KNN(q, len(pts)+100); len(got) != len(pts) {
		t.Errorf("k>n returned %d, want %d", len(got), len(pts))
	}
	if got := idx.AsExact().KNN(q, 0); got != nil {
		t.Error("exact k=0 must return nil")
	}
}

func TestEmptyIndex(t *testing.T) {
	idx := New(nil, testOptions())
	if idx.Len() != 0 {
		t.Errorf("Len = %d", idx.Len())
	}
	if idx.PointQuery(geom.Pt(0.5, 0.5)) {
		t.Error("empty index found a point")
	}
	if got := idx.WindowQuery(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}); len(got) != 0 {
		t.Errorf("empty window = %v", got)
	}
	if got := idx.KNN(geom.Pt(0.5, 0.5), 3); got != nil {
		t.Errorf("empty kNN = %v", got)
	}
	// Insert into empty index must bootstrap it.
	idx.Insert(geom.Pt(0.25, 0.75))
	if !idx.PointQuery(geom.Pt(0.25, 0.75)) || idx.Len() != 1 {
		t.Error("insert into empty index failed")
	}
}

func TestSinglePointIndex(t *testing.T) {
	p := geom.Pt(0.3, 0.4)
	idx := New([]geom.Point{p}, testOptions())
	if !idx.PointQuery(p) {
		t.Error("single point not found")
	}
	got := idx.KNN(geom.Pt(0.9, 0.9), 1)
	if len(got) != 1 || got[0] != p {
		t.Errorf("kNN on single-point index = %v", got)
	}
}

func TestErrorBoundsAreExact(t *testing.T) {
	// Every indexed point must lie within the error-bounded range of its
	// leaf prediction; this is what makes Algorithm 1 correct, and it is
	// what Table 4 reports.
	idx, pts := buildTest(t, dataset.Skewed, 3000)
	errLow, errHigh := idx.ErrorBounds()
	if errLow < 0 || errHigh < 0 {
		t.Fatalf("negative error bounds (%d, %d)", errLow, errHigh)
	}
	for _, p := range pts {
		lo, hi, ok := idx.locate(p)
		if !ok {
			t.Fatalf("locate failed for %v", p)
		}
		found := false
		idx.scanRange(lo, hi, func(b *store.Block, _ int) bool {
			if b.Find(p) >= 0 {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("point %v outside its error-bounded range [%d,%d]", p, lo, hi)
		}
	}
}

func TestStatsSanity(t *testing.T) {
	idx, pts := buildTest(t, dataset.Normal, 4000)
	s := idx.Stats()
	if s.Name != "RSMI" {
		t.Errorf("Name = %q", s.Name)
	}
	if s.SizeBytes <= 0 || s.Blocks <= 0 || s.Models <= 0 {
		t.Errorf("implausible stats %+v", s)
	}
	if s.Height < 1 {
		t.Errorf("Height = %d", s.Height)
	}
	wantBlocks := (len(pts) + idx.opts.BlockCapacity - 1) / idx.opts.BlockCapacity
	if s.Blocks < wantBlocks {
		t.Errorf("Blocks = %d, want >= %d", s.Blocks, wantBlocks)
	}
	ad := idx.AvgDepth()
	if ad < 1 || ad > float64(s.Height) {
		t.Errorf("AvgDepth = %v outside [1, %d]", ad, s.Height)
	}
}

func TestDeterministicBuildAndQueries(t *testing.T) {
	pts := dataset.Generate(dataset.Skewed, 2000, 9)
	a := New(pts, testOptions())
	b := New(pts, testOptions())
	sa, sb := a.Stats(), b.Stats()
	sa.BuildTime, sb.BuildTime = 0, 0 // wall time legitimately differs
	if sa != sb {
		t.Fatalf("same seed produced different structures:\n%+v\n%+v", sa, sb)
	}
	w := geom.Rect{MinX: 0.2, MinY: 0.0, MaxX: 0.4, MaxY: 0.1}
	ga, gb := a.WindowQuery(w), b.WindowQuery(w)
	if len(ga) != len(gb) {
		t.Errorf("same seed produced different answers: %d vs %d", len(ga), len(gb))
	}
}

func TestZCurveVariant(t *testing.T) {
	pts := dataset.Generate(dataset.Skewed, 2500, 10)
	opts := testOptions()
	opts.Curve = sfc.Z
	idx := New(pts, opts)
	for _, p := range pts {
		if !idx.PointQuery(p) {
			t.Fatalf("Z-curve RSMI lost point %v", p)
		}
	}
	oracle := index.NewLinear(pts)
	var total float64
	ws := workload.Windows(pts, 50, 0.01, 1, 11)
	for _, w := range ws {
		got := idx.WindowQuery(w)
		for _, p := range got {
			if !w.Contains(p) {
				t.Fatal("Z-curve window false positive")
			}
		}
		total += index.Recall(got, oracle.WindowQuery(w))
	}
	if avg := total / float64(len(ws)); avg < 0.7 {
		t.Errorf("Z-curve recall %.3f too low", avg)
	}
}

func TestPartitionThresholdShapesTree(t *testing.T) {
	pts := dataset.Generate(dataset.Skewed, 6000, 12)
	small := New(pts, Options{BlockCapacity: 20, PartitionThreshold: 200, Epochs: 20, LearningRate: 0.1, Seed: 1})
	large := New(pts, Options{BlockCapacity: 20, PartitionThreshold: 6000, Epochs: 20, LearningRate: 0.1, Seed: 1})
	ss, ls := small.Stats(), large.Stats()
	if ss.Models <= ls.Models {
		t.Errorf("smaller N must create more models: %d vs %d", ss.Models, ls.Models)
	}
	if ss.Height <= ls.Height {
		t.Errorf("smaller N must create a taller structure: %d vs %d", ss.Height, ls.Height)
	}
	if ls.Height != 1 || ls.Models != 1 {
		t.Errorf("N >= n must give a single leaf, got height=%d models=%d", ls.Height, ls.Models)
	}
	// Both must stay correct.
	for _, p := range pts[:300] {
		if !small.PointQuery(p) || !large.PointQuery(p) {
			t.Fatal("threshold variant lost a point")
		}
	}
}

func TestBlockAccessCounting(t *testing.T) {
	idx, pts := buildTest(t, dataset.Uniform, 3000)
	idx.ResetAccesses()
	if idx.Accesses() != 0 {
		t.Fatal("accesses not reset")
	}
	idx.PointQuery(pts[0])
	got := idx.Accesses()
	if got < 1 {
		t.Errorf("point query counted %d accesses, want >= 1", got)
	}
	_, errHigh := idx.ErrorBounds()
	errLow, _ := idx.ErrorBounds()
	if got > int64(errLow+errHigh+2) {
		t.Errorf("point query accessed %d blocks, beyond bound %d", got, errLow+errHigh+2)
	}
}

func TestStringSummary(t *testing.T) {
	idx, _ := buildTest(t, dataset.Uniform, 600)
	s := idx.String()
	if s == "" || len(s) < 10 {
		t.Errorf("String = %q", s)
	}
}
