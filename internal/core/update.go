package core

import (
	"rsmi/internal/geom"
	"rsmi/internal/index"
	"rsmi/internal/store"
)

// This file implements the update handling of §5: insertions into predicted
// blocks with overflow chaining, flag-based deletions, recursive MBR
// maintenance, and the periodic rebuild of the RSMIr variant (§6.2.5).

// Insert adds p to the index (§5). The point query locates the predicted
// block; if it (or its overflow chain) has space, p is placed there,
// otherwise a new overflow block is created, marked Inserted so it does not
// count towards the error bounds, and spliced after the chain. Ancestor
// MBRs are extended recursively.
//
// This context-free form is the implementation layer: InsertContext is the
// entry-checked wrapper that serving code reaches through the Engine
// surface, and it delegates here after observing ctx.
func (t *RSMI) Insert(p geom.Point) {
	if t.root == nil || t.baseBlocks == 0 {
		// Degenerate empty index: rebuild from a single point.
		*t = *New([]geom.Point{p}, t.opts)
		return
	}
	leaf, path := t.descend(p)
	if leaf == nil {
		// No leaf reachable (cannot happen on a built index, but keep the
		// invariant that Insert never loses points).
		*t = *New(append(t.AllPoints(), p), t.opts)
		return
	}
	local := leaf.predictClamped(p, leaf.numBlocks)
	base := t.store.Read(leaf.firstBlock + local)

	// Walk the overflow chain looking for space.
	var target *store.Block
	lastInChain := base
	for _, id := range t.store.Chain(base) {
		b := t.store.Read(id)
		lastInChain = b
		if target == nil && b.HasSpace() {
			target = b
		}
	}
	if target == nil {
		target = t.store.Alloc()
		target.Inserted = true
		t.appendBlockMBR(geom.EmptyRect())
		t.store.Link(lastInChain, target)
	}
	target.Append(p)
	t.blockMBR[target.ID] = t.blockMBR[target.ID].ExtendPoint(p)

	// Recursive MBR (and bookkeeping) updates up the path.
	leaf.mbr = leaf.mbr.ExtendPoint(p)
	leaf.points++
	for _, n := range path {
		n.mbr = n.mbr.ExtendPoint(p)
		n.points++
	}
	t.n++
	t.inserted++
}

// Delete removes the point with exactly p's coordinates (§5): the point is
// located with a point query, swapped with the last point in its block, and
// flagged deleted. Blocks are never deallocated, keeping the error bounds
// valid. MBRs are left unshrunk (conservative: supersets stay correct).
//
// This context-free form is the implementation layer: DeleteContext is the
// entry-checked wrapper that serving code reaches through the Engine
// surface, and it delegates here after observing ctx.
func (t *RSMI) Delete(p geom.Point) bool {
	blockID, slot, found := t.findPoint(p)
	if !found {
		return false
	}
	b := t.store.Peek(blockID)
	b.Delete(slot)
	t.n--
	// Decrement live counts down the model path.
	leaf, path := t.descend(p)
	if leaf != nil {
		leaf.points--
		for _, n := range path {
			n.points--
		}
	}
	return true
}

// InsertedSinceRebuild returns the number of insertions since the index was
// built or last rebuilt; the RSMIr policy of §6.2.5 rebuilds after every
// 10% n insertions.
func (t *RSMI) InsertedSinceRebuild() int { return t.inserted }

// AllPoints returns every live point in global block order.
func (t *RSMI) AllPoints() []geom.Point {
	out := make([]geom.Point, 0, t.n)
	if t.baseBlocks == 0 {
		return out
	}
	t.scanAll(func(b *store.Block) {
		b.Points(func(p geom.Point) { out = append(out, p) })
	})
	return out
}

// scanAll visits every block in list order without counting accesses
// (structural maintenance, not query work).
func (t *RSMI) scanAll(fn func(b *store.Block)) {
	cur := 0
	for cur != store.NilBlock {
		b := t.store.Peek(cur)
		if b == nil {
			return
		}
		fn(b)
		cur = b.Next
	}
}

// Rebuild reconstructs the index from its live points, retraining all
// sub-models and repacking all blocks. This is the periodic rebuild the
// paper prescribes for sustained update loads ("A periodic rebuild may be
// run (e.g., overnight) to retain a high query efficiency", §5; evaluated as
// RSMIr in §6.2.5). The paper rebuilds only over-threshold sub-models; a
// full rebuild is used here because block ids must stay globally monotone
// in curve order for window scans — see EXPERIMENTS.md for the impact.
//
// This context-free form is the implementation layer: RebuildContext is the
// entry-checked wrapper that serving code reaches through the Engine
// surface, and it delegates here after observing ctx.
func (t *RSMI) Rebuild() {
	pts := t.AllPoints()
	*t = *New(pts, t.opts)
}

// Rebuilder wraps an RSMI as the RSMIr variant: after every insertion it
// checks the 10% n policy and rebuilds when due. It implements index.Index.
type Rebuilder struct {
	*RSMI
	// Fraction is the insert fraction triggering a rebuild (default 0.1,
	// §6.2.5: "rebuilds ... after every 10%n insertions").
	Fraction float64
}

// AsRebuilder returns the RSMIr view of the index.
func (t *RSMI) AsRebuilder() *Rebuilder {
	return &Rebuilder{RSMI: t, Fraction: 0.1}
}

// Name implements index.Index.
func (r *Rebuilder) Name() string { return "RSMIr" }

// Insert implements index.Index, rebuilding when the policy fires.
func (r *Rebuilder) Insert(p geom.Point) {
	r.RSMI.Insert(p)
	if float64(r.RSMI.inserted) >= r.Fraction*float64(r.RSMI.n) {
		r.RSMI.Rebuild()
	}
}

// Stats implements index.Index.
func (r *Rebuilder) Stats() index.Stats {
	s := r.RSMI.Stats()
	s.Name = r.Name()
	return s
}
