// Package core implements the paper's primary contribution: the Recursive
// Spatial Model Index (RSMI) of §3, its query algorithms of §4 (point,
// window, and kNN), the exact-answer variant RSMIa, and the update handling
// of §5 including the periodic-rebuild variant RSMIr.
//
// # Structure (§3)
//
// A leaf model orders its points by the rank-space curve-value technique of
// §3.1, packs every B of them into a block, and trains an MLP that maps
// point coordinates to the (normalised) block id, recording exact error
// bounds (Eqs. 4–5). An internal model partitions its points with a learned
// non-regular 2^⌊log4 N/B⌋ × 2^⌊log4 N/B⌋ grid (§3.2): an MLP is trained to
// map coordinates to the grid cell's curve value, and the points are grouped
// by the model's own predictions, so query-time descent is exact by
// construction — whatever cell the model predicts for a point is the cell
// whose subtree indexes it.
//
// # Correctness guarantees
//
// Point queries have no false negatives (error-bounded scan, §4.1). Window
// queries have no false positives and may miss points (approximate, §4.2);
// ExactWindow/ExactKNN use the per-model MBRs for exact answers (the RSMIa
// variant of §6.2.3). All guarantees hold regardless of how well the models
// trained.
package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"rsmi/internal/cdf"
	"rsmi/internal/geom"
	"rsmi/internal/index"
	"rsmi/internal/mlp"
	"rsmi/internal/rank"
	"rsmi/internal/sfc"
	"rsmi/internal/store"
)

// DefaultPartitionThreshold is the paper's N = 10,000 (§6.1, chosen by the
// Table 3 sweep).
const DefaultPartitionThreshold = 10000

// maxDepth bounds the recursion; a model that makes no grouping progress is
// turned into an oversized leaf instead (correct, just slower), so the bound
// is a safety net rather than a tuning knob.
const maxDepth = 16

// Options configures RSMI construction.
type Options struct {
	// BlockCapacity is B, the points per block (default 100, §6.1).
	BlockCapacity int
	// PartitionThreshold is N, the maximum points a leaf model handles
	// (default 10,000, §6.1).
	PartitionThreshold int
	// Curve selects the SFC used for ordering (default Hilbert, §6.1).
	Curve sfc.Kind
	// LearningRate, Epochs, and TargetLoss configure sub-model training
	// (defaults 0.01 / 500 / off, matching §6.1; the bench harness lowers
	// Epochs for sweep speed).
	LearningRate float64
	Epochs       int
	TargetLoss   float64
	// Gamma is the PMF piece count for kNN skew estimation (default 100).
	Gamma int
	// Delta is the PMF slope probe step (default 0.01).
	Delta float64
	// Seed drives all model initialisation deterministically.
	Seed int64
	// RawGridLeafOrder disables the rank-space transform and orders leaf
	// points by their curve value on a fixed coordinate grid instead —
	// the ordering of the ZM baseline [46]. It exists only for the
	// ablation experiment (EXPERIMENTS.md, "Ablations"): the paper's claim is that
	// rank-space ordering yields a simpler CDF and tighter error bounds.
	RawGridLeafOrder bool
}

// withDefaults fills unset fields with the paper's defaults.
func (o Options) withDefaults() Options {
	if o.BlockCapacity == 0 {
		o.BlockCapacity = store.DefaultBlockCapacity
	}
	if o.PartitionThreshold == 0 {
		o.PartitionThreshold = DefaultPartitionThreshold
	}
	if o.LearningRate == 0 {
		o.LearningRate = mlp.DefaultLearningRate
	}
	if o.Epochs == 0 {
		o.Epochs = mlp.DefaultEpochs
	}
	if o.Gamma == 0 {
		o.Gamma = cdf.DefaultGamma
	}
	if o.Delta == 0 {
		o.Delta = cdf.DefaultDelta
	}
	return o
}

// node is one sub-model M_{i,j} of the RSMI.
type node struct {
	model *mlp.Network
	// norm is the bounding box of the training points, used to normalise
	// model inputs to the unit range (§6.1).
	norm geom.Rect
	// mbr is the subtree MBR, maintained under insertion (§5) and used by
	// the exact RSMIa traversal (§4.2 end).
	mbr geom.Rect

	// Internal-model fields.
	children []*node // indexed by predicted cell curve value; nil = empty
	cells    int     // grid cells = S²

	// Leaf-model fields.
	leaf       bool
	firstBlock int // first base block id
	numBlocks  int // base blocks owned by this leaf
	// errUp is M.err_l (Eq. 4): the largest under-prediction, i.e. how far
	// the true block can lie ABOVE the prediction, so scans extend upward
	// by errUp. errDown is M.err_a (Eq. 5): the largest over-prediction,
	// extending scans downward.
	errUp   int
	errDown int
	points  int // live points in the subtree (maintained by updates)
}

// RSMI is the learned spatial index. It is not safe for concurrent use.
type RSMI struct {
	opts  Options
	store *store.Manager
	root  *node
	n     int // live points

	// blockMBR caches the MBR of every block (base and inserted), extended
	// on insertion; not shrunk on deletion (conservative, stays correct).
	blockMBR []geom.Rect
	// baseBlocks is the number of blocks created at build time; ids >=
	// baseBlocks are insertion overflow blocks reached via chains.
	baseBlocks int

	pmfX, pmfY *cdf.PMF

	buildTime  time.Duration
	models     int
	leaves     int
	height     int
	depthSum   int64 // sum over points of their leaf depth, for AvgDepth
	seedSerial int64
	inserted   int // insertions since build/rebuild (drives RSMIr policy)
	lastTail   int // tail block of the previously packed leaf run
}

var _ index.Index = (*RSMI)(nil)

// New builds an RSMI over the points (§3). The input slice is not modified.
func New(pts []geom.Point, opts Options) *RSMI {
	opts = opts.withDefaults()
	start := time.Now()
	t := &RSMI{
		opts:     opts,
		store:    store.NewManager(opts.BlockCapacity),
		n:        len(pts),
		lastTail: store.NilBlock,
	}
	work := append([]geom.Point(nil), pts...)
	t.root = t.build(work, 1)
	t.buildPMFs(work)
	t.buildTime = time.Since(start)
	return t
}

// buildPMFs constructs the per-dimension piecewise CDFs used to estimate the
// kNN skew parameters αx, αy (§4.3).
func (t *RSMI) buildPMFs(pts []geom.Point) {
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
	}
	t.pmfX = cdf.New(xs, t.opts.Gamma)
	t.pmfY = cdf.New(ys, t.opts.Gamma)
}

// build recursively constructs the sub-model for pts at the given depth.
// pts may be reordered.
func (t *RSMI) build(pts []geom.Point, depth int) *node {
	if depth > t.height {
		t.height = depth
	}
	if len(pts) <= t.opts.PartitionThreshold || depth >= maxDepth {
		return t.buildLeaf(pts, depth)
	}
	return t.buildInternal(pts, depth)
}

// buildLeaf orders pts by their rank-space curve value, packs them into
// blocks, and trains the leaf model (§3.1).
func (t *RSMI) buildLeaf(pts []geom.Point, depth int) *node {
	ordered := t.orderLeaf(pts)
	first, count := t.store.Pack(ordered)
	for id := first; id < first+count; id++ {
		t.appendBlockMBR(t.store.Peek(id).MBR())
	}
	// Chain this leaf's run after the previous leaf's, so window scans can
	// cross leaf boundaries ("The order of blocks under the different leaf
	// models follows the order of the partition IDs", §3.2).
	t.store.LinkRuns(t.lastTail, first)
	t.lastTail = first + count - 1
	t.baseBlocks = t.store.NumBlocks()

	n := &node{
		leaf:       true,
		norm:       geom.BoundingRect(ordered),
		mbr:        geom.BoundingRect(ordered),
		firstBlock: first,
		numBlocks:  count,
		points:     len(ordered),
	}
	t.models++
	t.leaves++
	t.depthSum += int64(len(ordered)) * int64(depth)

	if count > 1 {
		n.model = t.trainModel(ordered, func(i int) float64 {
			blk := i / t.opts.BlockCapacity
			return float64(blk) / float64(count-1)
		}, count)
		// Exact error bounds over the training set (Eqs. 4–5): an
		// under-prediction (M < blk) means the true block is above the
		// prediction, widening the upward scan; an over-prediction widens
		// the downward scan.
		for i, p := range ordered {
			blk := i / t.opts.BlockCapacity
			pred := n.predictClamped(p, count)
			switch {
			case pred < blk && blk-pred > n.errUp:
				n.errUp = blk - pred
			case pred > blk && pred-blk > n.errDown:
				n.errDown = pred - blk
			}
		}
	}
	return n
}

// orderLeaf orders leaf points for packing: rank-space curve order by
// default (§3.1), or raw-grid curve order under the A1 ablation.
func (t *RSMI) orderLeaf(pts []geom.Point) []geom.Point {
	if !t.opts.RawGridLeafOrder {
		return rank.Order(pts, t.opts.Curve)
	}
	norm := geom.BoundingRect(pts)
	curve := sfc.New(t.opts.Curve, sfc.OrderFor(len(pts)))
	side := float64(curve.Side() - 1)
	type cp struct {
		cv uint64
		p  geom.Point
	}
	cps := make([]cp, len(pts))
	for i, p := range pts {
		nx, ny := normalise(norm, p)
		cps[i] = cp{curve.Value(uint32(nx*side), uint32(ny*side)), p}
	}
	sort.Slice(cps, func(i, j int) bool {
		if cps[i].cv != cps[j].cv {
			return cps[i].cv < cps[j].cv
		}
		return cps[i].p.Less(cps[j].p)
	})
	out := make([]geom.Point, len(cps))
	for i, c := range cps {
		out[i] = c.p
	}
	return out
}

// buildInternal learns the non-regular grid partitioning of §3.2 and
// recurses into the predicted groups.
func (t *RSMI) buildInternal(pts []geom.Point, depth int) *node {
	nb := float64(t.opts.PartitionThreshold) / float64(t.opts.BlockCapacity)
	order := uint(1) // ⌊log4 N/B⌋, clamped to at least a 2×2 grid
	if f := math.Floor(math.Log2(nb) / 2); f > 1 {
		order = uint(f)
	}
	curve := sfc.New(t.opts.Curve, order)
	side := int(curve.Side())
	cells := side * side

	// Non-regular grid: cut into `side` columns of equal count by x, then
	// each column into `side` cells of equal count by y.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
	nPts := len(pts)
	colSize := (nPts + side - 1) / side
	cellCV := make([]uint64, nPts) // ground-truth cell curve value per point
	for c := 0; c < side; c++ {
		lo := c * colSize
		if lo >= nPts {
			break
		}
		hi := lo + colSize
		if hi > nPts {
			hi = nPts
		}
		col := pts[lo:hi]
		sort.Slice(col, func(i, j int) bool {
			if col[i].Y != col[j].Y {
				return col[i].Y < col[j].Y
			}
			return col[i].X < col[j].X
		})
		rowSize := (len(col) + side - 1) / side
		for i := range col {
			cy := i / rowSize
			if cy >= side {
				cy = side - 1
			}
			cellCV[lo+i] = curve.Value(uint32(c), uint32(cy))
		}
	}

	n := &node{
		norm:  geom.BoundingRect(pts),
		mbr:   geom.BoundingRect(pts),
		cells: cells,
	}
	t.models++
	n.model = t.trainModel(pts, func(i int) float64 {
		return float64(cellCV[i]) / float64(cells-1)
	}, cells)

	// Group points by the model's own prediction (the learned grouping of
	// §3.2) so descent is exact.
	groups := make([][]geom.Point, cells)
	for _, p := range pts {
		c := n.predictClamped(p, cells)
		groups[c] = append(groups[c], p)
	}

	n.children = make([]*node, cells)
	for c, g := range groups {
		if len(g) == 0 {
			continue
		}
		if len(g) == nPts {
			// Model collapse: every point predicted into one cell. Recursing
			// would not terminate; an oversized leaf keeps the index correct.
			n.children[c] = t.buildLeaf(g, depth+1)
			n.points += len(g)
			continue
		}
		n.children[c] = t.build(g, depth+1)
		n.points += len(g)
	}
	return n
}

// trainModel trains an MLP mapping normalised coordinates to target(i) for
// each point, with the paper's hidden sizing rule for the given output-class
// count.
func (t *RSMI) trainModel(pts []geom.Point, target func(int) float64, classes int) *mlp.Network {
	t.seedSerial++
	cfg := mlp.Config{
		Inputs:       2,
		Hidden:       mlp.HiddenFor(2, classes),
		LearningRate: t.opts.LearningRate,
		Epochs:       t.opts.Epochs,
		TargetLoss:   t.opts.TargetLoss,
		Seed:         t.opts.Seed + t.seedSerial,
	}
	net := mlp.New(cfg)
	norm := geom.BoundingRect(pts)
	xs := make([]float64, 0, 2*len(pts))
	ys := make([]float64, 0, len(pts))
	for i, p := range pts {
		nx, ny := normalise(norm, p)
		xs = append(xs, nx, ny)
		ys = append(ys, target(i))
	}
	net.Train(cfg, xs, ys)
	return net
}

// predictClamped runs the node's model on p and clamps the rounded output to
// [0, classes-1]. A nil model (single-block leaf) predicts 0.
func (n *node) predictClamped(p geom.Point, classes int) int {
	if n.model == nil || classes <= 1 {
		return 0
	}
	nx, ny := normalise(n.norm, p)
	v := n.model.Predict([]float64{nx, ny})
	c := int(math.Round(v * float64(classes-1)))
	if c < 0 {
		return 0
	}
	if c >= classes {
		return classes - 1
	}
	return c
}

// normalise maps p into the unit square relative to norm; degenerate spans
// map to 0.5.
func normalise(norm geom.Rect, p geom.Point) (float64, float64) {
	nx, ny := 0.5, 0.5
	if dx := norm.MaxX - norm.MinX; dx > 0 {
		nx = (p.X - norm.MinX) / dx
	}
	if dy := norm.MaxY - norm.MinY; dy > 0 {
		ny = (p.Y - norm.MinY) / dy
	}
	return nx, ny
}

// appendBlockMBR records the MBR of a newly allocated block.
func (t *RSMI) appendBlockMBR(r geom.Rect) {
	t.blockMBR = append(t.blockMBR, r)
}

// descend walks from the root to the leaf model responsible for p
// (Algorithm 1, lines 1–3), returning the leaf and the path of internal
// nodes visited. When the predicted child is empty, the nearest non-empty
// sibling cell is used: p is then provably not indexed, but window-query
// corners still need a block estimate (§4.2 discussion).
func (t *RSMI) descend(p geom.Point) (leaf *node, path []*node) {
	n := t.root
	for !n.leaf {
		path = append(path, n)
		c := n.predictClamped(p, n.cells)
		child := n.children[c]
		if child == nil {
			child = nearestChild(n, c)
			if child == nil {
				return nil, path
			}
		}
		n = child
	}
	return n, path
}

// nearestChild returns the non-nil child with cell index closest to c.
func nearestChild(n *node, c int) *node {
	for d := 1; d < n.cells; d++ {
		if i := c - d; i >= 0 && n.children[i] != nil {
			return n.children[i]
		}
		if i := c + d; i < n.cells && n.children[i] != nil {
			return n.children[i]
		}
	}
	return nil
}

// Name implements index.Index.
func (t *RSMI) Name() string { return "RSMI" }

// Len implements index.Index.
func (t *RSMI) Len() int { return t.n }

// Accesses implements index.Index.
func (t *RSMI) Accesses() int64 { return t.store.Accesses() }

// ResetAccesses implements index.Index.
func (t *RSMI) ResetAccesses() { t.store.ResetAccesses() }

// ErrorBounds returns the maximum leaf prediction error bounds in blocks
// (M.err_l of Eq. 4, M.err_a of Eq. 5), the quantities reported in Table 4.
func (t *RSMI) ErrorBounds() (errLow, errHigh int) {
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.leaf {
			if n.errUp > errLow {
				errLow = n.errUp
			}
			if n.errDown > errHigh {
				errHigh = n.errDown
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return errLow, errHigh
}

// AvgDepth returns the average number of sub-models invoked to reach a data
// block (§6.2.2 reports 3.11–4.01 across the data sets).
func (t *RSMI) AvgDepth() float64 {
	if t.n == 0 {
		return 0
	}
	return float64(t.depthSum) / float64(t.n)
}

// Stats implements index.Index.
func (t *RSMI) Stats() index.Stats {
	var modelBytes int64
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		// norm + mbr rectangles and structural fields.
		modelBytes += 8 * 8
		if n.model != nil {
			modelBytes += n.model.SizeBytes()
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	if t.pmfX != nil {
		modelBytes += t.pmfX.SizeBytes() + t.pmfY.SizeBytes()
	}
	// Block MBR cache (4 float64 per block) supports RSMIa and kNN.
	modelBytes += int64(len(t.blockMBR)) * 32
	errLow, errHigh := t.ErrorBounds()
	return index.Stats{
		Name:      t.Name(),
		SizeBytes: t.store.SizeBytes() + modelBytes,
		Height:    t.height,
		Blocks:    t.store.NumBlocks(),
		BuildTime: t.buildTime,
		Models:    t.models,
		ErrLow:    errLow,
		ErrHigh:   errHigh,
	}
}

// Options returns the (defaulted) options the index was built with.
func (t *RSMI) Options() Options { return t.opts }

// String summarises the index structure.
func (t *RSMI) String() string {
	return fmt.Sprintf("RSMI{n=%d models=%d leaves=%d height=%d blocks=%d}",
		t.n, t.models, t.leaves, t.height, t.store.NumBlocks())
}
