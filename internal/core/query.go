package core

import (
	"math"

	"rsmi/internal/geom"
	"rsmi/internal/sfc"
	"rsmi/internal/store"
)

// locate is Algorithm 1's model part: it descends to the leaf model for q
// and returns the predicted global block id with the leaf's error bounds as
// a clamped scan range [lo, hi] over base blocks.
func (t *RSMI) locate(q geom.Point) (lo, hi int, ok bool) {
	leaf, _ := t.descend(q)
	if leaf == nil {
		return 0, -1, false
	}
	local := leaf.predictClamped(q, leaf.numBlocks)
	lo = leaf.firstBlock + local - leaf.errDown
	hi = leaf.firstBlock + local + leaf.errUp
	// The true block of any point in this leaf lies within the leaf's base
	// range, so the scan clamps to it.
	if lo < leaf.firstBlock {
		lo = leaf.firstBlock
	}
	if last := leaf.firstBlock + leaf.numBlocks - 1; hi > last {
		hi = last
	}
	return lo, hi, true
}

// scanRange walks the block list from base block `begin` through base block
// `end` inclusive, visiting every base block in between and every inserted
// overflow block chained among them. fn receives each block and the id of
// the base block whose chain it belongs to; returning false stops the scan.
func (t *RSMI) scanRange(begin, end int, fn func(b *store.Block, base int) bool) {
	if begin > end || begin < 0 || t.baseBlocks == 0 {
		return
	}
	if end >= t.baseBlocks {
		end = t.baseBlocks - 1
	}
	cur := begin
	base := begin
	for cur != store.NilBlock {
		b := t.store.Read(cur)
		if b == nil {
			return
		}
		if !b.Inserted {
			base = b.ID
		}
		if !fn(b, base) {
			return
		}
		next := b.Next
		if next == store.NilBlock {
			return
		}
		nb := t.store.Peek(next)
		if !nb.Inserted && nb.ID > end {
			return
		}
		cur = next
	}
}

// PointQuery implements Algorithm 1: descend the models, then scan the
// error-bounded block range (and any overflow chains) for a point with q's
// exact coordinates. It implements index.Index and never returns a false
// negative for indexed points.
//
// This context-free form is the implementation layer: PointQueryContext is the
// entry-checked wrapper that serving code reaches through the Engine
// surface, and it delegates here after observing ctx.
func (t *RSMI) PointQuery(q geom.Point) bool {
	_, _, found := t.findPoint(q)
	return found
}

// findPoint returns the block id and slot holding q.
func (t *RSMI) findPoint(q geom.Point) (blockID, slot int, found bool) {
	lo, hi, ok := t.locate(q)
	if !ok {
		return 0, 0, false
	}
	t.scanRange(lo, hi, func(b *store.Block, base int) bool {
		if i := b.Find(q); i >= 0 {
			blockID, slot, found = b.ID, i, true
			return false
		}
		return true
	})
	return blockID, slot, found
}

// windowBounds computes the base-block scan range for a window query
// (Algorithm 2, lines 1–10). For Hilbert curves the extreme curve values in
// the window lie on its boundary, so the four corners are used heuristically
// (§4.2); for Z-curves the bottom-left and top-right corners are exact.
func (t *RSMI) windowBounds(q geom.Rect) (begin, end int, any bool) {
	corners := t.windowCorners(q)
	begin, end = math.MaxInt, -1
	for _, c := range corners {
		lo, hi, ok := t.locate(c)
		if !ok {
			continue
		}
		any = true
		// If the corner itself is indexed, its actual block is an exact
		// bound; otherwise fall back to the error-bounded range.
		if id, _, found := t.findPointIn(c, lo, hi); found {
			lo, hi = id, id
		}
		if lo < begin {
			begin = lo
		}
		if hi > end {
			end = hi
		}
	}
	return begin, end, any
}

// windowCorners returns the point queries used to bound the scan: two
// corners for Z-curves, four for Hilbert curves (§4.2).
func (t *RSMI) windowCorners(q geom.Rect) []geom.Point {
	bl := geom.Pt(q.MinX, q.MinY)
	tr := geom.Pt(q.MaxX, q.MaxY)
	if t.opts.Curve == sfc.Z {
		return []geom.Point{bl, tr}
	}
	return []geom.Point{bl, tr, geom.Pt(q.MinX, q.MaxY), geom.Pt(q.MaxX, q.MinY)}
}

// findPointIn scans [lo, hi] for q and returns the *base* block id of the
// chain where q was found, which is what the window scan bounds need.
func (t *RSMI) findPointIn(q geom.Point, lo, hi int) (baseID, slot int, found bool) {
	t.scanRange(lo, hi, func(b *store.Block, base int) bool {
		if i := b.Find(q); i >= 0 {
			baseID, slot, found = base, i, true
			return false
		}
		return true
	})
	return baseID, slot, found
}

// WindowQuery implements Algorithm 2: bound the block range with corner
// point queries, scan it, and filter by the window. The answer has no false
// positives; it may miss points whose blocks fall outside the predicted
// range (the approximate behaviour evaluated in §6.2.3, recall > 87%).
//
// This context-free form is the implementation layer: WindowQueryContext is the
// entry-checked wrapper that serving code reaches through the Engine
// surface, and it delegates here after observing ctx.
func (t *RSMI) WindowQuery(q geom.Rect) []geom.Point {
	return t.windowQueryAppend(nil, q)
}

// windowQueryAppend is WindowQuery appending into dst (which may be nil),
// the shared implementation behind WindowQuery and WindowQueryAppend.
func (t *RSMI) windowQueryAppend(dst []geom.Point, q geom.Rect) []geom.Point {
	begin, end, ok := t.windowBounds(q)
	if !ok || end < begin {
		return dst
	}
	out := dst
	t.scanRange(begin, end, func(b *store.Block, _ int) bool {
		// Skip blocks whose cached MBR misses the window without touching
		// their points (cheap filter; the block read is already counted).
		if !t.blockMBR[b.ID].Intersects(q) {
			return true
		}
		b.Points(func(p geom.Point) {
			if q.Contains(p) {
				out = append(out, p)
			}
		})
		return true
	})
	return out
}

// KNN implements Algorithm 3: an expanding search region sized by the
// learned per-dimension CDFs, probed with window queries. Results are
// approximate (recall > 88% in §6.2.4) and sorted by distance.
//
// This context-free form is the implementation layer: KNNContext is the
// entry-checked wrapper that serving code reaches through the Engine
// surface, and it delegates here after observing ctx.
func (t *RSMI) KNN(q geom.Point, k int) []geom.Point {
	if k <= 0 || t.n == 0 {
		return nil
	}
	if k > t.n {
		k = t.n
	}
	// Initial region: a k/n-fraction rectangle scaled by the skew
	// parameters αx, αy (Eq. 6).
	frac := math.Sqrt(float64(k) / float64(t.n))
	width := t.pmfX.Alpha(q.X, t.opts.Delta) * frac
	height := t.pmfY.Alpha(q.Y, t.opts.Delta) * frac

	pq := newKNNHeap(k, q)
	visited := make(map[int]bool)

	const maxRounds = 64
	for round := 0; round < maxRounds; round++ {
		wq := geom.RectAround(q, width, height)
		begin, end, ok := t.windowBounds(wq)
		if ok {
			t.scanRange(begin, end, func(b *store.Block, _ int) bool {
				if visited[b.ID] {
					return true
				}
				visited[b.ID] = true
				// Prune blocks that cannot improve the current k-th NN
				// (MINDIST test of Algorithm 3, line 7).
				if pq.Len() >= k && t.blockMBR[b.ID].MinDist2(q) >= pq.worst() {
					return true
				}
				b.Points(func(p geom.Point) { pq.offer(p) })
				return true
			})
		}
		if pq.Len() < k {
			width *= 2
			height *= 2
			continue
		}
		kth := math.Sqrt(pq.worst())
		if kth > math.Sqrt(width*width+height*height)/2 {
			width = 2 * kth
			height = 2 * kth
			continue
		}
		break
	}
	return pq.sorted()
}

// knnHeap is a bounded max-heap of the k best candidates by distance to q.
type knnHeap struct {
	q    geom.Point
	k    int
	dist []float64 // squared distances, max-heap order
	pts  []geom.Point
}

func newKNNHeap(k int, q geom.Point) *knnHeap {
	return &knnHeap{q: q, k: k}
}

func (h *knnHeap) Len() int { return len(h.pts) }

// worst returns the squared distance of the current k-th candidate.
func (h *knnHeap) worst() float64 {
	if len(h.dist) == 0 {
		return math.Inf(1)
	}
	return h.dist[0]
}

// offer adds p if it improves the k best.
func (h *knnHeap) offer(p geom.Point) {
	d := h.q.Dist2(p)
	if len(h.pts) < h.k {
		h.push(p, d)
		return
	}
	if d >= h.dist[0] {
		return
	}
	h.pop()
	h.push(p, d)
}

func (h *knnHeap) push(p geom.Point, d float64) {
	h.pts = append(h.pts, p)
	h.dist = append(h.dist, d)
	i := len(h.dist) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.dist[parent] >= h.dist[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *knnHeap) pop() {
	last := len(h.dist) - 1
	h.swap(0, last)
	h.dist = h.dist[:last]
	h.pts = h.pts[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && h.dist[l] > h.dist[big] {
			big = l
		}
		if r < last && h.dist[r] > h.dist[big] {
			big = r
		}
		if big == i {
			break
		}
		h.swap(i, big)
		i = big
	}
}

func (h *knnHeap) swap(i, j int) {
	h.dist[i], h.dist[j] = h.dist[j], h.dist[i]
	h.pts[i], h.pts[j] = h.pts[j], h.pts[i]
}

// sorted drains the heap into ascending-distance order.
func (h *knnHeap) sorted() []geom.Point {
	out := make([]geom.Point, len(h.pts))
	for i := len(h.pts) - 1; i >= 0; i-- {
		out[i] = h.pts[0]
		h.pop()
	}
	return out
}
