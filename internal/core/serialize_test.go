package core

import (
	"bytes"
	"testing"

	"rsmi/internal/dataset"
	"rsmi/internal/geom"
	"rsmi/internal/index"
	"rsmi/internal/workload"
)

func roundTrip(t *testing.T, idx *RSMI) *RSMI {
	t.Helper()
	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return got
}

func TestSerializeRoundTripQueriesIdentical(t *testing.T) {
	pts := dataset.Generate(dataset.OSMLike, 4000, 31)
	orig := New(pts, testOptions())
	loaded := roundTrip(t, orig)

	if loaded.Len() != orig.Len() {
		t.Fatalf("Len: %d vs %d", loaded.Len(), orig.Len())
	}
	so, sl := orig.Stats(), loaded.Stats()
	so.BuildTime, sl.BuildTime = 0, 0
	if so != sl {
		t.Fatalf("Stats diverge:\n%+v\n%+v", so, sl)
	}
	// Every point query answer identical (and exact).
	for _, p := range pts {
		if !loaded.PointQuery(p) {
			t.Fatalf("loaded index lost %v", p)
		}
	}
	// Window and kNN answers bit-identical.
	for _, w := range workload.Windows(pts, 40, 0.01, 1, 32) {
		a, b := orig.WindowQuery(w), loaded.WindowQuery(w)
		if len(a) != len(b) {
			t.Fatalf("window answers diverge: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("window answer order diverges at %d", i)
			}
		}
	}
	for _, q := range workload.KNNPoints(pts, 30, 33) {
		a, b := orig.KNN(q, 10), loaded.KNN(q, 10)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("kNN answers diverge at %d", i)
			}
		}
	}
}

func TestSerializeAfterUpdates(t *testing.T) {
	pts := dataset.Generate(dataset.Skewed, 2000, 34)
	idx := New(pts, testOptions())
	ins := workload.InsertPoints(pts, 600, 35)
	for _, p := range ins {
		idx.Insert(p)
	}
	del := workload.DeleteSample(pts, 300, 36)
	gone := map[geom.Point]bool{}
	for _, p := range del {
		idx.Delete(p)
		gone[p] = true
	}
	loaded := roundTrip(t, idx)
	if loaded.Len() != idx.Len() {
		t.Fatalf("Len after updates: %d vs %d", loaded.Len(), idx.Len())
	}
	for _, p := range ins {
		if !loaded.PointQuery(p) {
			t.Fatalf("inserted point %v lost through serialisation", p)
		}
	}
	for _, p := range del {
		if loaded.PointQuery(p) {
			t.Fatalf("deleted point %v resurrected by serialisation", p)
		}
	}
	// Exact queries still exact.
	var live []geom.Point
	for _, p := range append(pts, ins...) {
		if !gone[p] {
			live = append(live, p)
		}
	}
	oracle := index.NewLinear(live)
	for _, w := range workload.Windows(live, 20, 0.02, 1, 37) {
		got := loaded.ExactWindow(w)
		want := oracle.WindowQuery(w)
		if len(got) != len(want) || index.Recall(got, want) != 1 {
			t.Fatalf("exact window wrong after round trip: %d vs %d", len(got), len(want))
		}
	}
	// Loaded index remains updatable.
	p := geom.Pt(0.42, 0.1337)
	loaded.Insert(p)
	if !loaded.PointQuery(p) {
		t.Fatal("loaded index rejected insert")
	}
}

func TestSerializeEmptyAndSingle(t *testing.T) {
	for _, n := range []int{0, 1} {
		pts := dataset.Generate(dataset.Uniform, n, 38)
		idx := New(pts, testOptions())
		loaded := roundTrip(t, idx)
		if loaded.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, loaded.Len())
		}
		if n == 1 && !loaded.PointQuery(pts[0]) {
			t.Fatal("single point lost")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("this is not an index file at all"),
		"truncated": append(append([]byte{}, serialMagic[:]...), 1, 2, 3),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(bytes.NewReader(data)); err == nil {
				t.Error("Load accepted garbage")
			}
		})
	}
}

func TestLoadRejectsCorruptedBody(t *testing.T) {
	pts := dataset.Generate(dataset.Uniform, 1500, 39)
	idx := New(pts, testOptions())
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncations anywhere must error, never panic.
	for _, cut := range []int{10, 50, len(data) / 2, len(data) - 3} {
		if _, err := Load(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("Load accepted truncation at %d", cut)
		}
	}
}
