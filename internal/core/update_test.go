package core

import (
	"math/rand"
	"testing"

	"rsmi/internal/dataset"
	"rsmi/internal/geom"
	"rsmi/internal/index"
	"rsmi/internal/workload"
)

func TestInsertThenFind(t *testing.T) {
	idx, pts := buildTest(t, dataset.Skewed, 2000)
	ins := workload.InsertPoints(pts, 1000, 21)
	for _, p := range ins {
		idx.Insert(p)
	}
	if idx.Len() != 3000 {
		t.Fatalf("Len = %d, want 3000", idx.Len())
	}
	for i, p := range ins {
		if !idx.PointQuery(p) {
			t.Fatalf("inserted point %d (%v) not found", i, p)
		}
	}
	// Original points must remain findable.
	for _, p := range pts {
		if !idx.PointQuery(p) {
			t.Fatalf("pre-existing point %v lost after inserts", p)
		}
	}
}

func TestInsertedSinceRebuildCounter(t *testing.T) {
	idx, pts := buildTest(t, dataset.Uniform, 1000)
	if idx.InsertedSinceRebuild() != 0 {
		t.Fatal("fresh index has nonzero insert counter")
	}
	for _, p := range workload.InsertPoints(pts, 50, 22) {
		idx.Insert(p)
	}
	if idx.InsertedSinceRebuild() != 50 {
		t.Errorf("counter = %d, want 50", idx.InsertedSinceRebuild())
	}
	idx.Rebuild()
	if idx.InsertedSinceRebuild() != 0 {
		t.Error("rebuild did not reset counter")
	}
}

func TestWindowAfterInsertsNoFalsePositivesAndFindsInserted(t *testing.T) {
	idx, pts := buildTest(t, dataset.Normal, 2000)
	ins := workload.InsertPoints(pts, 600, 23)
	for _, p := range ins {
		idx.Insert(p)
	}
	all := append(append([]geom.Point(nil), pts...), ins...)
	oracle := index.NewLinear(all)
	exact := idx.AsExact()
	ws := workload.Windows(all, 80, 0.01, 1, 24)
	var recall float64
	for _, w := range ws {
		got := idx.WindowQuery(w)
		for _, p := range got {
			if !w.Contains(p) {
				t.Fatalf("false positive %v after inserts", p)
			}
		}
		want := oracle.WindowQuery(w)
		recall += index.Recall(got, want)
		// Exact variant stays exact through insertions.
		if eg := exact.WindowQuery(w); index.Recall(eg, want) != 1 || len(eg) != len(want) {
			t.Fatalf("exact window wrong after inserts: %d vs %d", len(eg), len(want))
		}
	}
	if avg := recall / float64(len(ws)); avg < 0.7 {
		t.Errorf("window recall after inserts = %.3f", avg)
	}
}

func TestKNNAfterInserts(t *testing.T) {
	idx, pts := buildTest(t, dataset.Skewed, 2000)
	ins := workload.InsertPoints(pts, 600, 25)
	for _, p := range ins {
		idx.Insert(p)
	}
	all := append(append([]geom.Point(nil), pts...), ins...)
	oracle := index.NewLinear(all)
	var recall float64
	qs := workload.KNNPoints(all, 40, 26)
	for _, q := range qs {
		recall += index.KNNRecall(idx.KNN(q, 10), oracle.KNN(q, 10), q)
	}
	if avg := recall / float64(len(qs)); avg < 0.7 {
		t.Errorf("kNN recall after inserts = %.3f", avg)
	}
}

func TestDelete(t *testing.T) {
	idx, pts := buildTest(t, dataset.Uniform, 1500)
	del := workload.DeleteSample(pts, 500, 27)
	for _, p := range del {
		if !idx.Delete(p) {
			t.Fatalf("Delete(%v) returned false for indexed point", p)
		}
	}
	if idx.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", idx.Len())
	}
	deleted := make(map[geom.Point]struct{}, len(del))
	for _, p := range del {
		deleted[p] = struct{}{}
		if idx.PointQuery(p) {
			t.Fatalf("deleted point %v still found", p)
		}
		if idx.Delete(p) {
			t.Fatalf("double delete of %v returned true", p)
		}
	}
	for _, p := range pts {
		if _, gone := deleted[p]; gone {
			continue
		}
		if !idx.PointQuery(p) {
			t.Fatalf("survivor %v lost after deletions", p)
		}
	}
}

func TestDeleteAbsent(t *testing.T) {
	idx, _ := buildTest(t, dataset.Uniform, 500)
	if idx.Delete(geom.Pt(5, 5)) {
		t.Error("deleting absent point returned true")
	}
	if idx.Len() != 500 {
		t.Error("failed delete changed Len")
	}
}

func TestDeleteThenQueries(t *testing.T) {
	idx, pts := buildTest(t, dataset.Skewed, 2000)
	del := workload.DeleteSample(pts, 700, 28)
	gone := make(map[geom.Point]struct{}, len(del))
	for _, p := range del {
		idx.Delete(p)
		gone[p] = struct{}{}
	}
	var live []geom.Point
	for _, p := range pts {
		if _, g := gone[p]; !g {
			live = append(live, p)
		}
	}
	oracle := index.NewLinear(live)
	// Deleted points must never appear in any query answer.
	for _, w := range workload.Windows(pts, 60, 0.02, 1, 29) {
		for _, p := range idx.WindowQuery(w) {
			if _, g := gone[p]; g {
				t.Fatalf("deleted point %v in window answer", p)
			}
		}
		got := idx.AsExact().WindowQuery(w)
		want := oracle.WindowQuery(w)
		if len(got) != len(want) || index.Recall(got, want) != 1 {
			t.Fatalf("exact window after deletes: %d vs %d", len(got), len(want))
		}
	}
	for _, q := range workload.KNNPoints(live, 30, 30) {
		for _, p := range idx.KNN(q, 10) {
			if _, g := gone[p]; g {
				t.Fatalf("deleted point %v in kNN answer", p)
			}
		}
	}
}

func TestInsertReusesDeletedSlots(t *testing.T) {
	// Per §5 case (1): a block with space left by a deleted point accepts the
	// insertion without creating an overflow block.
	idx, pts := buildTest(t, dataset.Uniform, 1000)
	blocksBefore := idx.store.NumBlocks()
	// Delete then insert the same point: it must land in freed space.
	for i := 0; i < 200; i++ {
		idx.Delete(pts[i])
	}
	for i := 0; i < 200; i++ {
		idx.Insert(geom.Pt(pts[i].X+1e-9, pts[i].Y))
	}
	grown := idx.store.NumBlocks() - blocksBefore
	if grown > 20 {
		t.Errorf("insert after delete created %d new blocks; slots not reused", grown)
	}
}

func TestRebuildPreservesContent(t *testing.T) {
	idx, pts := buildTest(t, dataset.OSMLike, 2000)
	ins := workload.InsertPoints(pts, 500, 31)
	for _, p := range ins {
		idx.Insert(p)
	}
	del := workload.DeleteSample(pts, 300, 32)
	gone := make(map[geom.Point]struct{})
	for _, p := range del {
		idx.Delete(p)
		gone[p] = struct{}{}
	}
	lenBefore := idx.Len()
	idx.Rebuild()
	if idx.Len() != lenBefore {
		t.Fatalf("rebuild changed Len: %d -> %d", lenBefore, idx.Len())
	}
	for _, p := range append(pts, ins...) {
		_, deleted := gone[p]
		if got := idx.PointQuery(p); got == deleted {
			t.Fatalf("after rebuild PointQuery(%v) = %v, deleted = %v", p, got, deleted)
		}
	}
	// Rebuild must clear overflow blocks: every block is a freshly packed
	// base block, and the count is at most one partial block per leaf above
	// the dense minimum.
	minBlocks := (idx.Len() + idx.opts.BlockCapacity - 1) / idx.opts.BlockCapacity
	if got := idx.store.NumBlocks(); got < minBlocks || got > minBlocks+idx.leaves {
		t.Errorf("blocks after rebuild = %d, want in [%d, %d]", got, minBlocks, minBlocks+idx.leaves)
	}
	if idx.baseBlocks != idx.store.NumBlocks() {
		t.Error("overflow blocks survived the rebuild")
	}
}

func TestRebuilderPolicy(t *testing.T) {
	idx, pts := buildTest(t, dataset.Uniform, 1000)
	r := idx.AsRebuilder()
	if r.Name() != "RSMIr" {
		t.Errorf("Name = %q", r.Name())
	}
	// Inserting 30% n with a 10% policy must trigger rebuilds, keeping the
	// outstanding insert counter below the threshold.
	for _, p := range workload.InsertPoints(pts, 300, 33) {
		r.Insert(p)
	}
	if got := r.InsertedSinceRebuild(); float64(got) >= 0.1*float64(r.Len()) {
		t.Errorf("rebuilder left %d outstanding inserts (n=%d)", got, r.Len())
	}
	if r.Len() != 1300 {
		t.Errorf("Len = %d, want 1300", r.Len())
	}
	if s := r.Stats(); s.Name != "RSMIr" {
		t.Errorf("Stats.Name = %q", s.Name)
	}
}

// Randomised end-to-end comparison against the Linear oracle: interleaved
// inserts, deletes, and queries must keep exactness for RSMIa and the
// no-false-negative guarantee for point queries.
func TestRandomOpsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pts := dataset.Generate(dataset.Skewed, 1200, 34)
	idx := New(pts, testOptions())
	oracle := index.NewLinear(pts)
	pool := append([]geom.Point(nil), pts...)

	for op := 0; op < 400; op++ {
		switch rng.Intn(4) {
		case 0: // insert
			p := geom.Pt(rng.Float64(), rng.Float64())
			idx.Insert(p)
			oracle.Insert(p)
			pool = append(pool, p)
		case 1: // delete
			if len(pool) == 0 {
				continue
			}
			i := rng.Intn(len(pool))
			p := pool[i]
			gi := idx.Delete(p)
			go_ := oracle.Delete(p)
			if gi != go_ {
				t.Fatalf("delete disagreement for %v: rsmi=%v oracle=%v", p, gi, go_)
			}
			pool[i] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
		case 2: // point queries
			if len(pool) == 0 {
				continue
			}
			p := pool[rng.Intn(len(pool))]
			if !idx.PointQuery(p) {
				t.Fatalf("false negative for %v", p)
			}
		case 3: // exact window
			c := geom.Pt(rng.Float64(), rng.Float64())
			w := geom.RectAround(c, 0.1, 0.1)
			got := idx.ExactWindow(w)
			want := oracle.WindowQuery(w)
			if len(got) != len(want) || index.Recall(got, want) != 1 {
				t.Fatalf("exact window diverged: %d vs %d", len(got), len(want))
			}
		}
		if idx.Len() != oracle.Len() {
			t.Fatalf("Len diverged: %d vs %d", idx.Len(), oracle.Len())
		}
	}
}
