package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"rsmi/internal/geom"
)

// magic identifies the binary point-file format written by WritePoints.
var magic = [4]byte{'R', 'S', 'P', '1'}

// WritePoints serialises points to w in a compact binary format: a 4-byte
// magic, a uint64 count, then n little-endian (x, y) float64 pairs.
func WritePoints(w io.Writer, pts []geom.Point) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(pts))); err != nil {
		return fmt.Errorf("dataset: write count: %w", err)
	}
	buf := make([]byte, 16)
	for _, p := range pts {
		binary.LittleEndian.PutUint64(buf[0:8], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(buf[8:16], math.Float64bits(p.Y))
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("dataset: write point: %w", err)
		}
	}
	return bw.Flush()
}

// ReadPoints deserialises a point file written by WritePoints.
func ReadPoints(r io.Reader) ([]geom.Point, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	if hdr != magic {
		return nil, errors.New("dataset: not a point file (bad magic)")
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("dataset: read count: %w", err)
	}
	const maxPoints = 1 << 32
	if n > maxPoints {
		return nil, fmt.Errorf("dataset: implausible point count %d", n)
	}
	pts := make([]geom.Point, 0, n)
	buf := make([]byte, 16)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("dataset: read point %d: %w", i, err)
		}
		pts = append(pts, geom.Pt(
			math.Float64frombits(binary.LittleEndian.Uint64(buf[0:8])),
			math.Float64frombits(binary.LittleEndian.Uint64(buf[8:16])),
		))
	}
	return pts, nil
}

// SaveFile writes points to path, creating or truncating it.
func SaveFile(path string, pts []geom.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := WritePoints(f, pts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads points from path.
func LoadFile(path string) ([]geom.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadPoints(f)
}
