package dataset

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"rsmi/internal/geom"
)

func TestGenerateCardinalityAndRange(t *testing.T) {
	for _, kind := range All() {
		t.Run(kind.String(), func(t *testing.T) {
			pts := Generate(kind, 5000, 1)
			if len(pts) != 5000 {
				t.Fatalf("got %d points, want 5000", len(pts))
			}
			for _, p := range pts {
				if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
					t.Fatalf("point %v outside unit square", p)
				}
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, kind := range All() {
		a := Generate(kind, 1000, 7)
		b := Generate(kind, 1000, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: generation not deterministic at %d", kind, i)
			}
		}
		c := Generate(kind, 1000, 8)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%v: different seeds produced identical data", kind)
		}
	}
}

func TestGenerateNoDuplicatePoints(t *testing.T) {
	for _, kind := range All() {
		pts := Generate(kind, 20000, 3)
		seen := make(map[geom.Point]struct{}, len(pts))
		for _, p := range pts {
			if _, dup := seen[p]; dup {
				t.Fatalf("%v: duplicate point %v", kind, p)
			}
			seen[p] = struct{}{}
		}
	}
}

func TestUniformIsRoughlyUniform(t *testing.T) {
	pts := Generate(Uniform, 40000, 5)
	// Quadrant counts should be near n/4.
	var q [4]int
	for _, p := range pts {
		i := 0
		if p.X >= 0.5 {
			i |= 1
		}
		if p.Y >= 0.5 {
			i |= 2
		}
		q[i]++
	}
	for i, c := range q {
		if math.Abs(float64(c)-10000) > 600 {
			t.Errorf("quadrant %d count %d deviates from 10000", i, c)
		}
	}
}

func TestNormalConcentratesAtCentre(t *testing.T) {
	pts := Generate(Normal, 20000, 6)
	centre := 0
	for _, p := range pts {
		if math.Abs(p.X-0.5) < 0.25 && math.Abs(p.Y-0.5) < 0.25 {
			centre++
		}
	}
	// For sigma = 1/6, ~86% of each coordinate lies within ±1.5 sigma.
	if frac := float64(centre) / float64(len(pts)); frac < 0.6 {
		t.Errorf("only %.2f of normal points near centre", frac)
	}
}

func TestSkewedPushesMassDown(t *testing.T) {
	pts := Generate(Skewed, 20000, 7)
	below := 0
	for _, p := range pts {
		if p.Y < 0.1 {
			below++
		}
	}
	// P(u^4 < 0.1) = 0.1^(1/4) ~ 0.56.
	frac := float64(below) / float64(len(pts))
	if frac < 0.5 || frac > 0.62 {
		t.Errorf("skewed mass below y=0.1 is %.3f, want ~0.56", frac)
	}
}

func TestTigerLikeClustersOnCorridors(t *testing.T) {
	// Corridor data has many points sharing nearly identical x or y; measure
	// by comparing coordinate histogram peaks against uniform.
	pts := Generate(TigerLike, 20000, 8)
	const bins = 200
	var hx [bins]int
	for _, p := range pts {
		b := int(p.X * bins)
		if b == bins {
			b--
		}
		hx[b]++
	}
	max := 0
	for _, c := range hx {
		if c > max {
			max = c
		}
	}
	mean := len(pts) / bins
	if max < 4*mean {
		t.Errorf("tiger-like x histogram peak %d not >> mean %d; corridors missing", max, mean)
	}
}

func TestOSMLikeIsHeavyTailed(t *testing.T) {
	pts := Generate(OSMLike, 30000, 9)
	const bins = 64
	var h [bins][bins]int
	for _, p := range pts {
		bx, by := int(p.X*bins), int(p.Y*bins)
		if bx == bins {
			bx--
		}
		if by == bins {
			by--
		}
		h[bx][by]++
	}
	max, occupied := 0, 0
	for i := 0; i < bins; i++ {
		for j := 0; j < bins; j++ {
			if h[i][j] > 0 {
				occupied++
			}
			if h[i][j] > max {
				max = h[i][j]
			}
		}
	}
	mean := float64(len(pts)) / float64(bins*bins)
	if float64(max) < 40*mean {
		t.Errorf("osm-like max cell %d not heavy-tailed vs mean %.1f", max, mean)
	}
}

func TestKindStringAndParse(t *testing.T) {
	for _, kind := range All() {
		got, err := Parse(kind.String())
		if err != nil || got != kind {
			t.Errorf("Parse(%q) = %v, %v", kind.String(), got, err)
		}
	}
	for s, want := range map[string]Kind{
		"uni": Uniform, "nor": Normal, "ske": Skewed, "tig": TigerLike, "osm": OSMLike,
	} {
		got, err := Parse(s)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := Parse("nope"); err == nil {
		t.Error("Parse of unknown kind must error")
	}
	if Kind(42).String() != "dataset.Kind(42)" {
		t.Error("unknown Kind String mismatch")
	}
}

func TestGeneratePanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Generate(unknown) must panic")
		}
	}()
	Generate(Kind(42), 10, 1)
}

func TestWriteReadRoundTrip(t *testing.T) {
	pts := Generate(Skewed, 1234, 10)
	var buf bytes.Buffer
	if err := WritePoints(&buf, pts); err != nil {
		t.Fatalf("WritePoints: %v", err)
	}
	got, err := ReadPoints(&buf)
	if err != nil {
		t.Fatalf("ReadPoints: %v", err)
	}
	if len(got) != len(pts) {
		t.Fatalf("round trip count %d != %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestReadPointsRejectsGarbage(t *testing.T) {
	if _, err := ReadPoints(bytes.NewReader([]byte("not a point file"))); err == nil {
		t.Error("bad magic must error")
	}
	if _, err := ReadPoints(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must error")
	}
	// Truncated payload.
	var buf bytes.Buffer
	if err := WritePoints(&buf, Generate(Uniform, 10, 1)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadPoints(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input must error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.bin")
	pts := Generate(Normal, 500, 11)
	if err := SaveFile(path, pts); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if len(got) != len(pts) || got[0] != pts[0] || got[499] != pts[499] {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("loading missing file must error")
	}
}
