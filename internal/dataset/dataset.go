// Package dataset generates and serialises the point data sets of §6.1.
//
// The synthetic families (Uniform, Normal, Skewed) follow the paper's recipe
// literally. The real data sets (TIGER, OSM) are not available offline;
// TigerLike and OSMLike are documented synthetic stand-ins that preserve the
// characteristics the evaluation stresses — see README.md, "Datasets".
//
// All generators are deterministic in their seed and emit points in the unit
// square with distinct coordinates in each dimension (the paper assumes "no
// two points have the same coordinates in both dimensions"; with float64
// draws, exact collisions are removed by rejection).
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"rsmi/internal/geom"
)

// Kind identifies a data distribution.
type Kind int

const (
	// Uniform points in the unit square.
	Uniform Kind = iota
	// Normal points around the square's centre (clipped to the square).
	Normal
	// Skewed points: uniform, then y ← y^SkewAlpha (paper: α = 4,
	// "following HRR [37, 38]").
	Skewed
	// TigerLike is the synthetic stand-in for the TIGER data set:
	// geographic features clustered along a road-like lattice.
	TigerLike
	// OSMLike is the synthetic stand-in for the OSM data set: heavy-tailed
	// urban clusters over a sparse background.
	OSMLike
)

// SkewAlpha is the paper's skew exponent (α = 4).
const SkewAlpha = 4

// kinds lists all Kind values in display order.
var kinds = []Kind{Uniform, Normal, Skewed, TigerLike, OSMLike}

// All returns every distribution kind in the order the paper's figures use
// (Uni., Nor., Ske., Tig., OSM).
func All() []Kind { return append([]Kind(nil), kinds...) }

// String implements fmt.Stringer with the paper's figure labels.
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "Uniform"
	case Normal:
		return "Normal"
	case Skewed:
		return "Skewed"
	case TigerLike:
		return "Tiger"
	case OSMLike:
		return "OSM"
	default:
		return fmt.Sprintf("dataset.Kind(%d)", int(k))
	}
}

// Parse returns the Kind named by s (case-sensitive match on String()
// values, plus lower-case aliases).
func Parse(s string) (Kind, error) {
	switch s {
	case "Uniform", "uniform", "uni":
		return Uniform, nil
	case "Normal", "normal", "nor":
		return Normal, nil
	case "Skewed", "skewed", "ske":
		return Skewed, nil
	case "Tiger", "tiger", "tig":
		return TigerLike, nil
	case "OSM", "osm":
		return OSMLike, nil
	}
	return 0, fmt.Errorf("dataset: unknown distribution %q", s)
}

// Generate produces n points of the given distribution.
func Generate(kind Kind, n int, seed int64) []geom.Point {
	switch kind {
	case Uniform:
		return uniform(n, seed)
	case Normal:
		return normal(n, seed)
	case Skewed:
		return skewed(n, seed, SkewAlpha)
	case TigerLike:
		return tigerLike(n, seed)
	case OSMLike:
		return osmLike(n, seed)
	default:
		panic(fmt.Sprintf("dataset: unknown kind %d", int(kind)))
	}
}

// dedup wraps a generator's raw draw function, rejecting exact duplicate
// points so the rank-space assumption holds.
type dedup struct {
	seen map[geom.Point]struct{}
}

func newDedup(n int) *dedup {
	return &dedup{seen: make(map[geom.Point]struct{}, n)}
}

// add reports whether p was fresh and records it.
func (d *dedup) add(p geom.Point) bool {
	if _, dup := d.seen[p]; dup {
		return false
	}
	d.seen[p] = struct{}{}
	return true
}

func uniform(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, 0, n)
	d := newDedup(n)
	for len(out) < n {
		p := geom.Pt(rng.Float64(), rng.Float64())
		if d.add(p) {
			out = append(out, p)
		}
	}
	return out
}

func normal(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, 0, n)
	d := newDedup(n)
	const sigma = 1.0 / 6
	for len(out) < n {
		x := 0.5 + rng.NormFloat64()*sigma
		y := 0.5 + rng.NormFloat64()*sigma
		if x < 0 || x > 1 || y < 0 || y > 1 {
			continue
		}
		p := geom.Pt(x, y)
		if d.add(p) {
			out = append(out, p)
		}
	}
	return out
}

func skewed(n int, seed int64, alpha int) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, 0, n)
	d := newDedup(n)
	for len(out) < n {
		x := rng.Float64()
		y := math.Pow(rng.Float64(), float64(alpha))
		p := geom.Pt(x, y)
		if d.add(p) {
			out = append(out, p)
		}
	}
	return out
}

// tigerLike mimics geographic feature data: most features (road segments,
// buildings, hydrography) line up along a coarse irregular lattice of
// corridors with Gaussian cross-corridor jitter, plus a rural background.
func tigerLike(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	// Irregular corridor positions.
	const corridors = 12
	hs := make([]float64, corridors) // horizontal corridor y-positions
	vs := make([]float64, corridors) // vertical corridor x-positions
	for i := range hs {
		hs[i] = rng.Float64()
		vs[i] = rng.Float64()
	}
	const jitter = 0.004
	out := make([]geom.Point, 0, n)
	d := newDedup(n)
	for len(out) < n {
		var p geom.Point
		switch r := rng.Float64(); {
		case r < 0.45: // along a horizontal corridor
			p = geom.Pt(rng.Float64(), clamp01(hs[rng.Intn(corridors)]+rng.NormFloat64()*jitter))
		case r < 0.90: // along a vertical corridor
			p = geom.Pt(clamp01(vs[rng.Intn(corridors)]+rng.NormFloat64()*jitter), rng.Float64())
		default: // rural background
			p = geom.Pt(rng.Float64(), rng.Float64())
		}
		if d.add(p) {
			out = append(out, p)
		}
	}
	return out
}

// osmLike mimics OpenStreetMap point density: a few extremely dense urban
// clusters whose weights follow a power law, over a sparse background. This
// is the most skewed of the five distributions, as OSM is in the paper
// (largest error bounds, most block accesses for the grid baseline).
func osmLike(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	const clusters = 24
	type cluster struct {
		c      geom.Point
		sigma  float64
		weight float64
	}
	cs := make([]cluster, clusters)
	total := 0.0
	for i := range cs {
		w := math.Pow(float64(i+1), -1.1) // Zipf-ish city sizes
		cs[i] = cluster{
			c:      geom.Pt(rng.Float64(), rng.Float64()),
			sigma:  0.002 + 0.02*rng.Float64(),
			weight: w,
		}
		total += w
	}
	out := make([]geom.Point, 0, n)
	d := newDedup(n)
	for len(out) < n {
		var p geom.Point
		if rng.Float64() < 0.85 {
			// Pick a cluster by weight.
			t := rng.Float64() * total
			var k int
			for k = 0; k < clusters-1; k++ {
				if t -= cs[k].weight; t <= 0 {
					break
				}
			}
			c := cs[k]
			p = geom.Pt(
				clamp01(c.c.X+rng.NormFloat64()*c.sigma),
				clamp01(c.c.Y+rng.NormFloat64()*c.sigma),
			)
		} else {
			p = geom.Pt(rng.Float64(), rng.Float64())
		}
		if d.add(p) {
			out = append(out, p)
		}
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
