// Package kdb implements the K-D-B-tree baseline of §6.1 [39]: a kd-tree
// realised with a B-tree-like page structure so it supports block storage.
// Region pages hold up to F disjoint child regions; point pages hold up to B
// points. Bulk construction recursively median-splits on alternating
// dimensions ("Grid and KDB are the fastest due to their simple
// sorting-based construction", §6.2.2); insertion splits pages K-D-B style,
// propagating splits downward through crossing child regions.
//
// Every page visited during a query counts as one block access.
package kdb

import (
	"math"
	"sort"
	"sync/atomic"
	"time"

	"rsmi/internal/geom"
	"rsmi/internal/index"
)

// DefaultFanout is the paper's page capacity (100 points per point page,
// 100 regions per region page).
const DefaultFanout = 100

// page is a K-D-B-tree page.
type page struct {
	region geom.Rect // the page's region (covers all content)
	leaf   bool
	pts    []geom.Point
	// children[i] occupies childRegion[i]; regions are disjoint and tile
	// the parent region.
	children []*page
	regions  []geom.Rect
}

// Tree is the K-D-B-tree baseline.
type Tree struct {
	root   *page
	fanout int
	size   int
	pages  int
	height int
	built  time.Duration
	// accesses is atomic: the baseline engines allow concurrent readers
	// (RWMutex read locks), and every query counts page visits.
	accesses atomic.Int64
}

var _ index.Index = (*Tree)(nil)

// universe is the region of the root page: the K-D-B-tree tiles the whole
// data space.
var universe = geom.Rect{
	MinX: math.Inf(-1), MinY: math.Inf(-1),
	MaxX: math.Inf(1), MaxY: math.Inf(1),
}

// New bulk-loads a K-D-B-tree by recursive median splits on alternating
// dimensions.
func New(pts []geom.Point, fanout int) *Tree {
	start := time.Now()
	if fanout == 0 {
		fanout = DefaultFanout
	}
	if fanout < 4 {
		fanout = 4
	}
	t := &Tree{fanout: fanout, size: len(pts)}
	work := append([]geom.Point(nil), pts...)
	t.root, t.height = t.bulk(work, universe, 0)
	t.built = time.Since(start)
	return t
}

// bulk builds the subtree for pts within region, returning it and its
// height. Splitting alternates dimensions starting with axis (0 = x).
func (t *Tree) bulk(pts []geom.Point, region geom.Rect, axis int) (*page, int) {
	t.pages++
	if len(pts) <= t.fanout {
		return &page{region: region, leaf: true, pts: append([]geom.Point(nil), pts...)}, 1
	}
	// Number of children needed so each child subtree can hold the points:
	// child capacity is fanout^(levels below). Compute the child count as
	// ceil(n / childCap) bounded by fanout.
	capacity := t.fanout
	for capacity < len(pts) {
		capacity *= t.fanout
	}
	childCap := capacity / t.fanout
	parts := (len(pts) + childCap - 1) / childCap
	if parts > t.fanout {
		parts = t.fanout
	}
	if parts < 2 {
		parts = 2
	}
	p := &page{region: region}
	maxH := 0
	t.partition(pts, region, axis, parts, func(sub []geom.Point, subRegion geom.Rect) {
		child, h := t.bulk(sub, subRegion, (axis+1)%2)
		p.children = append(p.children, child)
		p.regions = append(p.regions, subRegion)
		if h > maxH {
			maxH = h
		}
	})
	return p, maxH + 1
}

// partition recursively median-splits pts into `parts` contiguous regions,
// alternating split dimensions, and calls emit for each final part.
func (t *Tree) partition(pts []geom.Point, region geom.Rect, axis, parts int, emit func([]geom.Point, geom.Rect)) {
	if parts <= 1 || len(pts) == 0 {
		emit(pts, region)
		return
	}
	leftParts := parts / 2
	if axis == 0 {
		sort.Slice(pts, func(i, j int) bool {
			if pts[i].X != pts[j].X {
				return pts[i].X < pts[j].X
			}
			return pts[i].Y < pts[j].Y
		})
	} else {
		sort.Slice(pts, func(i, j int) bool {
			if pts[i].Y != pts[j].Y {
				return pts[i].Y < pts[j].Y
			}
			return pts[i].X < pts[j].X
		})
	}
	coord := func(p geom.Point) float64 {
		if axis == 0 {
			return p.X
		}
		return p.Y
	}
	cut := len(pts) * leftParts / parts
	// Move the cut to a clean coordinate boundary so every point strictly
	// left of the plane goes left and every point at or right of it goes
	// right — the same rule regionContains applies at query time.
	v := coord(pts[cut])
	lo := cut
	for lo > 0 && coord(pts[lo-1]) == v {
		lo--
	}
	if lo > 0 {
		cut = lo
	} else {
		hi := cut
		for hi < len(pts) && coord(pts[hi]) == v {
			hi++
		}
		if hi == len(pts) {
			// All points share this coordinate: this axis cannot split.
			emit(pts, region)
			return
		}
		cut = hi
	}
	split := coord(pts[cut])
	lr, rr := cutRegion(region, axis, split)
	t.partition(pts[:cut], lr, 1-axis, leftParts, emit)
	t.partition(pts[cut:], rr, 1-axis, parts-leftParts, emit)
}

// Name implements index.Index with the paper's label.
func (t *Tree) Name() string { return "KDB" }

// contains tests region membership with the K-D-B convention of half-open
// regions: [MinX, MaxX) except at the universe border. Using closed regions
// with tie points assigned left keeps duplicates-free data correct.
func regionContains(r geom.Rect, p geom.Point) bool {
	return p.X >= r.MinX && (p.X < r.MaxX || r.MaxX == math.Inf(1)) &&
		p.Y >= r.MinY && (p.Y < r.MaxY || r.MaxY == math.Inf(1))
}

// PointQuery implements index.Index: descend the unique region path.
func (t *Tree) PointQuery(q geom.Point) bool {
	p := t.root
	for {
		t.accesses.Add(1)
		if p.leaf {
			for _, pt := range p.pts {
				if pt == q {
					return true
				}
			}
			return false
		}
		next := -1
		for i, r := range p.regions {
			if regionContains(r, q) {
				next = i
				break
			}
		}
		if next == -1 {
			return false
		}
		p = p.children[next]
	}
}

// WindowQuery implements index.Index: recurse into intersecting regions.
// Exact.
func (t *Tree) WindowQuery(q geom.Rect) []geom.Point {
	var out []geom.Point
	var walk func(p *page)
	walk = func(p *page) {
		t.accesses.Add(1)
		if p.leaf {
			for _, pt := range p.pts {
				if q.Contains(pt) {
					out = append(out, pt)
				}
			}
			return
		}
		for i, r := range p.regions {
			if r.Intersects(q) {
				walk(p.children[i])
			}
		}
	}
	walk(t.root)
	return out
}

// KNN implements index.Index with best-first search over region pages [40].
func (t *Tree) KNN(q geom.Point, k int) []geom.Point {
	if k <= 0 || t.size == 0 {
		return nil
	}
	type entry struct {
		dist2 float64
		pg    *page
		pt    geom.Point
		isPt  bool
	}
	// Simple binary heap.
	var heap []entry
	push := func(e entry) {
		heap = append(heap, e)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].dist2 <= heap[i].dist2 {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() entry {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && heap[l].dist2 < heap[small].dist2 {
				small = l
			}
			if r < last && heap[r].dist2 < heap[small].dist2 {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	boundedMinDist := func(r geom.Rect) float64 {
		// Regions may be unbounded at the universe border; MinDist handles
		// infinities correctly because the point is always finite.
		return r.MinDist2(q)
	}
	push(entry{dist2: boundedMinDist(t.root.region), pg: t.root})
	var out []geom.Point
	for len(heap) > 0 && len(out) < k {
		e := pop()
		if e.isPt {
			out = append(out, e.pt)
			continue
		}
		t.accesses.Add(1)
		if e.pg.leaf {
			for _, p := range e.pg.pts {
				push(entry{dist2: q.Dist2(p), pt: p, isPt: true})
			}
			continue
		}
		for i, r := range e.pg.regions {
			push(entry{dist2: boundedMinDist(r), pg: e.pg.children[i]})
		}
	}
	return out
}

// Insert implements index.Index: descend to the point page; split pages
// K-D-B style on overflow.
func (t *Tree) Insert(p geom.Point) {
	t.size++
	if split := t.insert(t.root, p); split != nil {
		// Root split: new root with the two halves.
		old := t.root
		t.root = &page{
			region:   universe,
			children: []*page{old, split.right},
			regions:  []geom.Rect{split.leftRegion, split.rightRegion},
		}
		old.region = split.leftRegion
		t.pages++
		t.height++
	}
}

// splitResult describes a page split: the original page keeps the left
// half, right is the new sibling.
type splitResult struct {
	right       *page
	leftRegion  geom.Rect
	rightRegion geom.Rect
}

func (t *Tree) insert(pg *page, p geom.Point) *splitResult {
	if pg.leaf {
		pg.pts = append(pg.pts, p)
		if len(pg.pts) <= t.fanout {
			return nil
		}
		return t.splitPage(pg)
	}
	for i, r := range pg.regions {
		if !regionContains(r, p) {
			continue
		}
		if split := t.insert(pg.children[i], p); split != nil {
			pg.regions[i] = split.leftRegion
			pg.children[i].region = split.leftRegion
			pg.regions = append(pg.regions, split.rightRegion)
			pg.children = append(pg.children, split.right)
			if len(pg.children) > t.fanout {
				return t.splitPage(pg)
			}
		}
		return nil
	}
	// p is outside every child region (inserted beyond the build-time
	// extent): widen the nearest region. Regions tile the universe when
	// built, so this only happens on degenerate single-leaf trees.
	if len(pg.children) > 0 {
		pg.regions[0] = pg.regions[0].ExtendPoint(p)
		return t.insert(pg.children[0], p)
	}
	return nil
}

// splitPage splits pg by a median plane. For region pages, child regions
// crossing the plane are split recursively — the defining K-D-B-tree
// behaviour.
func (t *Tree) splitPage(pg *page) *splitResult {
	t.pages++
	if pg.leaf {
		axis := 0
		r := geom.BoundingRect(pg.pts)
		if r.Height() > r.Width() {
			axis = 1
		}
		sort.Slice(pg.pts, func(i, j int) bool {
			if axis == 0 {
				if pg.pts[i].X != pg.pts[j].X {
					return pg.pts[i].X < pg.pts[j].X
				}
				return pg.pts[i].Y < pg.pts[j].Y
			}
			if pg.pts[i].Y != pg.pts[j].Y {
				return pg.pts[i].Y < pg.pts[j].Y
			}
			return pg.pts[i].X < pg.pts[j].X
		})
		mid := len(pg.pts) / 2
		var plane float64
		if axis == 0 {
			plane = pg.pts[mid].X
		} else {
			plane = pg.pts[mid].Y
		}
		return t.splitLeafAt(pg, axis, plane)
	}
	// Region page: split at the median distinct child-region boundary, so
	// both halves are non-empty. If one axis has no distinct boundary, the
	// other is tried.
	for _, axis := range regionSplitAxes(pg.region) {
		var bounds []float64
		for _, r := range pg.regions {
			if axis == 0 {
				bounds = append(bounds, r.MinX)
			} else {
				bounds = append(bounds, r.MinY)
			}
		}
		sort.Float64s(bounds)
		distinct := bounds[:0:0]
		for i, b := range bounds {
			if i == 0 || b != bounds[i-1] {
				distinct = append(distinct, b)
			}
		}
		if len(distinct) < 2 {
			continue
		}
		plane := distinct[(len(distinct)+1)/2]
		return t.splitRegionAt(pg, axis, plane)
	}
	// No axis can split (all child regions share both minima): tolerate the
	// over-full page; queries remain correct.
	t.pages--
	return nil

}

// regionSplitAxes orders the axes by the region's extent, longest first.
func regionSplitAxes(r geom.Rect) [2]int {
	if r.IsEmpty() || r.Height() > r.Width() {
		return [2]int{1, 0}
	}
	return [2]int{0, 1}
}

// splitLeafAt splits a point page at the plane.
func (t *Tree) splitLeafAt(pg *page, axis int, plane float64) *splitResult {
	leftR, rightR := cutRegion(pg.region, axis, plane)
	var left, right []geom.Point
	for _, p := range pg.pts {
		if (axis == 0 && p.X < plane) || (axis == 1 && p.Y < plane) {
			left = append(left, p)
		} else {
			right = append(right, p)
		}
	}
	pg.pts = left
	pg.region = leftR
	return &splitResult{
		right:       &page{region: rightR, leaf: true, pts: right},
		leftRegion:  leftR,
		rightRegion: rightR,
	}
}

// splitRegionAt splits a region page at the plane, recursively splitting
// crossing children.
func (t *Tree) splitRegionAt(pg *page, axis int, plane float64) *splitResult {
	leftR, rightR := cutRegion(pg.region, axis, plane)
	leftPage := &page{region: leftR}
	rightPage := &page{region: rightR}
	for i, r := range pg.regions {
		child := pg.children[i]
		switch {
		case (axis == 0 && r.MaxX <= plane) || (axis == 1 && r.MaxY <= plane):
			leftPage.children = append(leftPage.children, child)
			leftPage.regions = append(leftPage.regions, r)
		case (axis == 0 && r.MinX >= plane) || (axis == 1 && r.MinY >= plane):
			rightPage.children = append(rightPage.children, child)
			rightPage.regions = append(rightPage.regions, r)
		default:
			// Child region crosses the plane: split it downward.
			split := t.splitChildAt(child, axis, plane)
			lcr, rcr := cutRegion(r, axis, plane)
			leftPage.children = append(leftPage.children, child)
			leftPage.regions = append(leftPage.regions, lcr)
			rightPage.children = append(rightPage.children, split)
			rightPage.regions = append(rightPage.regions, rcr)
		}
	}
	*pg = *leftPage
	return &splitResult{right: rightPage, leftRegion: leftR, rightRegion: rightR}
}

// splitChildAt force-splits child at the plane (downward propagation),
// returning the new right-side page.
func (t *Tree) splitChildAt(child *page, axis int, plane float64) *page {
	t.pages++
	if child.leaf {
		return t.splitLeafAt(child, axis, plane).right
	}
	return t.splitRegionAt(child, axis, plane).right
}

// cutRegion splits r at the plane along the axis.
func cutRegion(r geom.Rect, axis int, plane float64) (left, right geom.Rect) {
	left, right = r, r
	if axis == 0 {
		left.MaxX, right.MinX = plane, plane
		return left, right
	}
	left.MaxY, right.MinY = plane, plane
	return left, right
}

// Delete implements index.Index: locate and remove; pages are not merged
// (the paper's deletion flow flags points; KDB underflow handling is
// orthogonal to the evaluation).
func (t *Tree) Delete(p geom.Point) bool {
	pg := t.root
	for !pg.leaf {
		found := false
		for i, r := range pg.regions {
			if regionContains(r, p) {
				pg = pg.children[i]
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for i, pt := range pg.pts {
		if pt == p {
			last := len(pg.pts) - 1
			pg.pts[i] = pg.pts[last]
			pg.pts = pg.pts[:last]
			t.size--
			return true
		}
	}
	return false
}

// Len implements index.Index.
func (t *Tree) Len() int { return t.size }

// Stats implements index.Index.
func (t *Tree) Stats() index.Stats {
	const entryBytes = 40
	return index.Stats{
		Name:      t.Name(),
		SizeBytes: int64(t.pages) * int64(16+t.fanout*entryBytes),
		Height:    t.height,
		Blocks:    t.pages,
		BuildTime: t.built,
	}
}

// Accesses implements index.Index.
func (t *Tree) Accesses() int64 { return t.accesses.Load() }

// ResetAccesses implements index.Index.
func (t *Tree) ResetAccesses() { t.accesses.Store(0) }
