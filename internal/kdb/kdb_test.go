package kdb

import (
	"math"
	"testing"

	"rsmi/internal/dataset"
	"rsmi/internal/geom"
	"rsmi/internal/index"
	"rsmi/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, indextest.Config{
		Build: func(pts []geom.Point) index.Index {
			return New(pts, 50)
		},
		ExactWindow:     true,
		ExactKNN:        true,
		SupportsUpdates: true,
	})
}

// Region invariants: children tile their parent disjointly (interiors), and
// every page's points lie inside its region.
func TestRegionInvariants(t *testing.T) {
	pts := dataset.Generate(dataset.Skewed, 8000, 1)
	tr := New(pts, 32)
	var walk func(p *page)
	walk = func(p *page) {
		if p.leaf {
			for _, pt := range p.pts {
				if !regionContains(p.region, pt) {
					t.Fatalf("point %v outside its page region %v", pt, p.region)
				}
			}
			return
		}
		for i, r := range p.regions {
			if !p.region.ContainsRect(boundedRect(r, p.region)) {
				t.Fatalf("child region %v escapes parent %v", r, p.region)
			}
			for j := i + 1; j < len(p.regions); j++ {
				inter := r.Intersect(p.regions[j])
				if !inter.IsEmpty() && inter.Area() > 0 {
					t.Fatalf("child regions %d and %d overlap: %v", i, j, inter)
				}
			}
			walk(p.children[i])
		}
	}
	walk(tr.root)
}

// boundedRect clips infinite region borders to the parent for containment
// checks.
func boundedRect(r, parent geom.Rect) geom.Rect {
	c := r
	if math.IsInf(c.MinX, -1) {
		c.MinX = parent.MinX
	}
	if math.IsInf(c.MinY, -1) {
		c.MinY = parent.MinY
	}
	if math.IsInf(c.MaxX, 1) {
		c.MaxX = parent.MaxX
	}
	if math.IsInf(c.MaxY, 1) {
		c.MaxY = parent.MaxY
	}
	return c
}

func TestPageCapacityRespected(t *testing.T) {
	pts := dataset.Generate(dataset.OSMLike, 6000, 2)
	tr := New(pts, 40)
	var walk func(p *page)
	walk = func(p *page) {
		if p.leaf {
			if len(p.pts) > tr.fanout {
				t.Fatalf("point page holds %d > %d", len(p.pts), tr.fanout)
			}
			return
		}
		if len(p.children) > tr.fanout {
			t.Fatalf("region page holds %d > %d children", len(p.children), tr.fanout)
		}
		for _, c := range p.children {
			walk(c)
		}
	}
	walk(tr.root)
}

func TestInsertSplitsPropagate(t *testing.T) {
	// Start tiny and insert enough points to force multiple levels of
	// splits, including region-page splits.
	tr := New(dataset.Generate(dataset.Uniform, 10, 3), 8)
	extra := dataset.Generate(dataset.Normal, 3000, 4)
	for _, p := range extra {
		tr.Insert(p)
	}
	if tr.Len() != 3010 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, p := range extra {
		if !tr.PointQuery(p) {
			t.Fatalf("point %v lost after insert splits", p)
		}
	}
	if tr.height < 3 {
		t.Errorf("height = %d; expected growth from splits", tr.height)
	}
}

func TestBulkHeightMatchesFanout(t *testing.T) {
	// 10^4 points at fanout 100 must give height 2 (one region level, one
	// point level), mirroring the paper's 3-level KDB at 17M/100.
	pts := dataset.Generate(dataset.Uniform, 10000, 5)
	tr := New(pts, 100)
	if tr.height != 2 {
		t.Errorf("height = %d, want 2", tr.height)
	}
	small := New(dataset.Generate(dataset.Uniform, 50, 6), 100)
	if small.height != 1 {
		t.Errorf("tiny tree height = %d, want 1", small.height)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil, 100)
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.PointQuery(geom.Pt(0.5, 0.5)) {
		t.Error("empty tree found a point")
	}
	if got := tr.KNN(geom.Pt(0.5, 0.5), 3); got != nil {
		t.Error("empty tree kNN returned points")
	}
	tr.Insert(geom.Pt(0.1, 0.2))
	if !tr.PointQuery(geom.Pt(0.1, 0.2)) {
		t.Error("insert into empty tree failed")
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr := New(dataset.Generate(dataset.Uniform, 100, 7), 16)
	if tr.Delete(geom.Pt(5, 5)) {
		t.Error("delete of absent point succeeded")
	}
}
