package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"rsmi/internal/geom"
)

// WriteTo serialises the manager's capacity and every block, including
// deleted slots (the slot layout affects error-bound validity, so it must
// round-trip exactly). It implements io.WriterTo.
func (m *Manager) WriteTo(w io.Writer) (int64, error) {
	var written int64
	put := func(v interface{}) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	if err := put(int64(m.capacity)); err != nil {
		return written, fmt.Errorf("store: write capacity: %w", err)
	}
	if err := put(int64(len(m.blocks))); err != nil {
		return written, fmt.Errorf("store: write block count: %w", err)
	}
	for _, b := range m.blocks {
		flags := uint8(0)
		if b.Inserted {
			flags = 1
		}
		if err := put(int64(b.Prev)); err != nil {
			return written, err
		}
		if err := put(int64(b.Next)); err != nil {
			return written, err
		}
		if err := put(flags); err != nil {
			return written, err
		}
		if err := put(int64(len(b.pts))); err != nil {
			return written, err
		}
		for i, p := range b.pts {
			del := uint8(0)
			if b.deleted[i] {
				del = 1
			}
			if err := put(math.Float64bits(p.X)); err != nil {
				return written, err
			}
			if err := put(math.Float64bits(p.Y)); err != nil {
				return written, err
			}
			if err := put(del); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// ReadManager deserialises a manager written by WriteTo.
func ReadManager(r io.Reader) (*Manager, error) {
	var capacity, count int64
	if err := binary.Read(r, binary.LittleEndian, &capacity); err != nil {
		return nil, fmt.Errorf("store: read capacity: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("store: read block count: %w", err)
	}
	const maxBlocks = 1 << 32
	if capacity <= 0 || capacity > 1<<20 || count < 0 || count > maxBlocks {
		return nil, fmt.Errorf("store: implausible layout cap=%d blocks=%d", capacity, count)
	}
	m := NewManager(int(capacity))
	for id := int64(0); id < count; id++ {
		b := m.Alloc()
		var prev, next, slots int64
		var flags uint8
		if err := binary.Read(r, binary.LittleEndian, &prev); err != nil {
			return nil, fmt.Errorf("store: read block %d: %w", id, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &next); err != nil {
			return nil, fmt.Errorf("store: read block %d: %w", id, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &flags); err != nil {
			return nil, fmt.Errorf("store: read block %d: %w", id, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &slots); err != nil {
			return nil, fmt.Errorf("store: read block %d: %w", id, err)
		}
		if slots < 0 || slots > capacity {
			return nil, fmt.Errorf("store: block %d has %d slots (cap %d)", id, slots, capacity)
		}
		b.Prev, b.Next = int(prev), int(next)
		b.Inserted = flags&1 != 0
		for s := int64(0); s < slots; s++ {
			var xb, yb uint64
			var del uint8
			if err := binary.Read(r, binary.LittleEndian, &xb); err != nil {
				return nil, fmt.Errorf("store: read slot: %w", err)
			}
			if err := binary.Read(r, binary.LittleEndian, &yb); err != nil {
				return nil, fmt.Errorf("store: read slot: %w", err)
			}
			if err := binary.Read(r, binary.LittleEndian, &del); err != nil {
				return nil, fmt.Errorf("store: read slot: %w", err)
			}
			b.pts = append(b.pts, geom.Pt(math.Float64frombits(xb), math.Float64frombits(yb)))
			b.deleted = append(b.deleted, del&1 != 0)
			if del&1 == 0 {
				b.live++
			}
		}
	}
	return m, nil
}
