package store

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rsmi/internal/geom"
)

func TestNewManagerDefaults(t *testing.T) {
	m := NewManager(0)
	if m.Capacity() != DefaultBlockCapacity {
		t.Errorf("default capacity = %d, want %d", m.Capacity(), DefaultBlockCapacity)
	}
	m = NewManager(10)
	if m.Capacity() != 10 {
		t.Errorf("capacity = %d, want 10", m.Capacity())
	}
}

func TestNewManagerPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative capacity")
		}
	}()
	NewManager(-1)
}

func TestAllocAssignsSequentialIDs(t *testing.T) {
	m := NewManager(4)
	for i := 0; i < 5; i++ {
		b := m.Alloc()
		if b.ID != i {
			t.Errorf("block %d got ID %d", i, b.ID)
		}
		if b.Prev != NilBlock || b.Next != NilBlock {
			t.Errorf("new block must be unlinked, got prev=%d next=%d", b.Prev, b.Next)
		}
	}
	if m.NumBlocks() != 5 {
		t.Errorf("NumBlocks = %d, want 5", m.NumBlocks())
	}
}

func TestReadCountsAccessesPeekDoesNot(t *testing.T) {
	m := NewManager(4)
	m.Alloc()
	m.Alloc()
	if m.Accesses() != 0 {
		t.Fatal("fresh manager must have zero accesses")
	}
	m.Read(0)
	m.Read(1)
	m.Read(1)
	if got := m.Accesses(); got != 3 {
		t.Errorf("Accesses = %d, want 3", got)
	}
	m.Peek(0)
	if got := m.Accesses(); got != 3 {
		t.Errorf("Peek must not count: Accesses = %d, want 3", got)
	}
	if prev := m.ResetAccesses(); prev != 3 {
		t.Errorf("ResetAccesses returned %d, want 3", prev)
	}
	if m.Accesses() != 0 {
		t.Error("accesses not reset")
	}
}

func TestReadOutOfRangeReturnsNilWithoutCounting(t *testing.T) {
	m := NewManager(4)
	m.Alloc()
	if m.Read(-1) != nil || m.Read(5) != nil {
		t.Error("out-of-range Read must return nil")
	}
	if m.Accesses() != 0 {
		t.Errorf("out-of-range Read must not count, got %d", m.Accesses())
	}
}

func TestAppendAndFull(t *testing.T) {
	m := NewManager(3)
	b := m.Alloc()
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(3, 3)}
	for _, p := range pts {
		if !b.HasSpace() {
			t.Fatal("block should have space")
		}
		b.Append(p)
	}
	if b.HasSpace() {
		t.Error("full block reports space")
	}
	if b.Live() != 3 || b.Len() != 3 {
		t.Errorf("Live/Len = %d/%d, want 3/3", b.Live(), b.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("Append to full block must panic")
		}
	}()
	b.Append(geom.Pt(4, 4))
}

func TestDeleteAndSlotReuse(t *testing.T) {
	m := NewManager(3)
	b := m.Alloc()
	b.Append(geom.Pt(1, 1))
	b.Append(geom.Pt(2, 2))
	b.Append(geom.Pt(3, 3))

	i := b.Find(geom.Pt(2, 2))
	if i < 0 {
		t.Fatal("Find failed")
	}
	b.Delete(i)
	if b.Live() != 2 {
		t.Errorf("Live = %d, want 2", b.Live())
	}
	if b.Find(geom.Pt(2, 2)) != -1 {
		t.Error("deleted point still findable")
	}
	// Deletion must swap with the last live point so live points stay packed
	// in the prefix.
	if p, live := b.PointAt(i); !live || p != (geom.Pt(3, 3)) {
		t.Errorf("slot %d after delete = %v live=%v, want (3,3) live", i, p, live)
	}
	if !b.HasSpace() {
		t.Error("block with deleted slot must have space")
	}
	b.Append(geom.Pt(4, 4))
	if b.Live() != 3 {
		t.Errorf("Live after reuse = %d, want 3", b.Live())
	}
	if b.Find(geom.Pt(4, 4)) == -1 {
		t.Error("reinserted point not findable")
	}
}

func TestDeleteIgnoresInvalidSlots(t *testing.T) {
	m := NewManager(2)
	b := m.Alloc()
	b.Append(geom.Pt(1, 1))
	b.Delete(-1)
	b.Delete(5)
	if b.Live() != 1 {
		t.Error("invalid Delete changed live count")
	}
	b.Delete(0)
	b.Delete(0) // double delete is a no-op
	if b.Live() != 0 {
		t.Error("double delete corrupted live count")
	}
}

func TestPointsIteratesLiveOnly(t *testing.T) {
	m := NewManager(4)
	b := m.Alloc()
	b.Append(geom.Pt(1, 1))
	b.Append(geom.Pt(2, 2))
	b.Append(geom.Pt(3, 3))
	b.Delete(b.Find(geom.Pt(1, 1)))
	var got []geom.Point
	b.Points(func(p geom.Point) { got = append(got, p) })
	if len(got) != 2 {
		t.Fatalf("Points visited %d, want 2", len(got))
	}
	for _, p := range got {
		if p == (geom.Pt(1, 1)) {
			t.Error("visited deleted point")
		}
	}
}

func TestMBR(t *testing.T) {
	m := NewManager(4)
	b := m.Alloc()
	if !b.MBR().IsEmpty() {
		t.Error("empty block MBR must be empty")
	}
	b.Append(geom.Pt(1, 5))
	b.Append(geom.Pt(3, 2))
	want := geom.Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 5}
	if got := b.MBR(); got != want {
		t.Errorf("MBR = %v, want %v", got, want)
	}
	b.Delete(b.Find(geom.Pt(1, 5)))
	want = geom.Rect{MinX: 3, MinY: 2, MaxX: 3, MaxY: 2}
	if got := b.MBR(); got != want {
		t.Errorf("MBR after delete = %v, want %v", got, want)
	}
}

func TestPackLinksAndOrders(t *testing.T) {
	m := NewManager(2)
	pts := []geom.Point{geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0), geom.Pt(4, 0), geom.Pt(5, 0)}
	first, count := m.Pack(pts)
	if first != 0 || count != 3 {
		t.Fatalf("Pack = (%d,%d), want (0,3)", first, count)
	}
	// Walk the chain and collect points in order.
	var got []geom.Point
	for id := first; id != NilBlock; {
		b := m.Peek(id)
		b.Points(func(p geom.Point) { got = append(got, p) })
		id = b.Next
	}
	if len(got) != len(pts) {
		t.Fatalf("chain yielded %d points, want %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Errorf("chain order broken at %d: %v != %v", i, got[i], pts[i])
		}
	}
	// Prev pointers mirror Next pointers.
	for id := 0; id < m.NumBlocks(); id++ {
		b := m.Peek(id)
		if b.Next != NilBlock && m.Peek(b.Next).Prev != id {
			t.Errorf("block %d: next %d does not point back", id, b.Next)
		}
	}
}

func TestPackEmptyAllocatesOneBlock(t *testing.T) {
	m := NewManager(4)
	first, count := m.Pack(nil)
	if first != 0 || count != 1 {
		t.Errorf("Pack(nil) = (%d,%d), want (0,1)", first, count)
	}
	if m.Peek(0).Live() != 0 {
		t.Error("empty pack block must be empty")
	}
}

// Property: packing n points into capacity-c blocks produces ceil(n/c) blocks
// and preserves multiset and order.
func TestPackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(16)
		n := rng.Intn(500)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64(), rng.Float64())
		}
		m := NewManager(c)
		first, count := m.Pack(pts)
		wantBlocks := (n + c - 1) / c
		if wantBlocks == 0 {
			wantBlocks = 1
		}
		if count != wantBlocks {
			return false
		}
		var got []geom.Point
		for id := first; id != NilBlock; {
			b := m.Peek(id)
			b.Points(func(p geom.Point) { got = append(got, p) })
			id = b.Next
		}
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != pts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLinkSplicesInsertedBlock(t *testing.T) {
	m := NewManager(2)
	first, _ := m.Pack([]geom.Point{geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0)})
	b0 := m.Peek(first)
	ov := m.Alloc()
	ov.Inserted = true
	ov.Append(geom.Pt(9, 9))
	m.Link(b0, ov)

	if b0.Next != ov.ID || ov.Prev != b0.ID {
		t.Error("Link did not splice forward pointers")
	}
	// Chain from b0 covers the overflow block but stops at the next base
	// block.
	chain := m.Chain(b0)
	if len(chain) != 2 || chain[0] != b0.ID || chain[1] != ov.ID {
		t.Errorf("Chain = %v, want [%d %d]", chain, b0.ID, ov.ID)
	}
	// The original successor is still reachable after the overflow block.
	if next := m.Peek(ov.Next); next == nil || next.Inserted {
		t.Error("base successor lost after splice")
	}
}

func TestChainSingleBlock(t *testing.T) {
	m := NewManager(2)
	b := m.Alloc()
	if got := m.Chain(b); len(got) != 1 || got[0] != b.ID {
		t.Errorf("Chain = %v, want [%d]", got, b.ID)
	}
}

func TestLinkRuns(t *testing.T) {
	m := NewManager(2)
	aFirst, aCount := m.Pack([]geom.Point{geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0)})
	bFirst, _ := m.Pack([]geom.Point{geom.Pt(4, 0)})
	aTail := aFirst + aCount - 1
	m.LinkRuns(aTail, bFirst)
	if m.Peek(aTail).Next != bFirst || m.Peek(bFirst).Prev != aTail {
		t.Error("LinkRuns did not connect runs")
	}
	m.LinkRuns(NilBlock, bFirst) // no-op, must not panic
	m.LinkRuns(aTail, NilBlock)  // no-op, must not panic
}

func TestSizeBytesGrowsWithBlocks(t *testing.T) {
	m := NewManager(100)
	if m.SizeBytes() != 0 {
		t.Error("empty manager must have zero size")
	}
	m.Alloc()
	one := m.SizeBytes()
	if one <= 0 {
		t.Error("size must be positive after alloc")
	}
	m.Alloc()
	if m.SizeBytes() != 2*one {
		t.Errorf("size not linear in blocks: %d vs 2*%d", m.SizeBytes(), one)
	}
	// Fixed-size pages: appending points must not change the footprint.
	b := m.Peek(0)
	b.Append(geom.Pt(1, 1))
	if m.SizeBytes() != 2*one {
		t.Error("append changed page footprint")
	}
}
