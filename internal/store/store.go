// Package store implements the block storage substrate shared by every index
// in this repository.
//
// The paper stores points in external-memory style blocks of capacity B
// (default 100) and reports the number of block accesses as the
// external-memory cost indicator, while actually running everything in main
// memory (§6.1). This package mirrors that: blocks live in memory, every
// Read counts one block access, and Manager reports byte sizes so the index
// size experiments (Figs. 7 and 9) can be reproduced.
//
// Blocks form a doubly linked list through BlockID pointers, which is what
// enables the contiguous data scans of the window query algorithm (§3.2:
// "in each block, we further store pointers to its preceding and subsequent
// blocks") and the overflow chaining of the insertion algorithm (§5).
package store

import (
	"fmt"
	"sync/atomic"

	"rsmi/internal/geom"
)

// DefaultBlockCapacity is the paper's block capacity B = 100 (§6.1).
const DefaultBlockCapacity = 100

// NilBlock is the null block pointer.
const NilBlock = -1

// pointBytes is the storage footprint of one data point: two float64
// coordinates. Used for size accounting only.
const pointBytes = 16

// blockHeaderBytes approximates the per-block overhead: prev/next pointers,
// an id, a count, and the inserted flag, as 4-byte fields plus the flag.
const blockHeaderBytes = 17

// Block is a fixed-capacity page of points.
type Block struct {
	// ID is the block's position in its Manager.
	ID int
	// Prev and Next are the linked-list neighbours (NilBlock at the ends).
	// For bulk-loaded data the list order equals ID order; blocks created by
	// insertions splice into the list out of ID order.
	Prev, Next int
	// Inserted marks overflow blocks created by insertions. They do not
	// count towards the learned error bounds (§5) and are reached by
	// following Next pointers from their predicted base block.
	Inserted bool

	pts     []geom.Point
	deleted []bool
	live    int
}

// Len returns the number of slots in use (including deleted slots, which
// still occupy space until a compaction or swap removes them).
func (b *Block) Len() int { return len(b.pts) }

// Live returns the number of non-deleted points.
func (b *Block) Live() int { return b.live }

// Points calls fn for every live point in the block.
func (b *Block) Points(fn func(geom.Point)) {
	for i, p := range b.pts {
		if !b.deleted[i] {
			fn(p)
		}
	}
}

// PointAt returns the point in slot i and whether it is live.
func (b *Block) PointAt(i int) (geom.Point, bool) {
	return b.pts[i], !b.deleted[i]
}

// Find returns the slot of the live point equal to p, or -1.
func (b *Block) Find(p geom.Point) int {
	for i, q := range b.pts {
		if !b.deleted[i] && q == p {
			return i
		}
	}
	return -1
}

// MBR returns the minimum bounding rectangle of the live points.
func (b *Block) MBR() geom.Rect {
	r := geom.EmptyRect()
	for i, p := range b.pts {
		if !b.deleted[i] {
			r = r.ExtendPoint(p)
		}
	}
	return r
}

// Manager owns an append-only array of blocks, counts accesses, and accounts
// for storage size. A Manager instance backs exactly one index.
type Manager struct {
	capacity int
	blocks   []*Block
	accesses atomic.Int64
}

// NewManager returns a Manager producing blocks of the given capacity.
// Capacity must be positive; the zero value selects DefaultBlockCapacity.
func NewManager(capacity int) *Manager {
	if capacity == 0 {
		capacity = DefaultBlockCapacity
	}
	if capacity < 0 {
		panic(fmt.Sprintf("store: negative block capacity %d", capacity))
	}
	return &Manager{capacity: capacity}
}

// Capacity returns the block capacity B.
func (m *Manager) Capacity() int { return m.capacity }

// NumBlocks returns the number of allocated blocks.
func (m *Manager) NumBlocks() int { return len(m.blocks) }

// Alloc creates a new empty block at the end of the block array and returns
// it. The block starts unlinked (Prev = Next = NilBlock).
func (m *Manager) Alloc() *Block {
	b := &Block{
		ID:      len(m.blocks),
		Prev:    NilBlock,
		Next:    NilBlock,
		pts:     make([]geom.Point, 0, m.capacity),
		deleted: make([]bool, 0, m.capacity),
	}
	m.blocks = append(m.blocks, b)
	return b
}

// Read returns block id and counts one block access. It returns nil for ids
// outside the allocated range, so callers can probe predicted ids safely.
func (m *Manager) Read(id int) *Block {
	if id < 0 || id >= len(m.blocks) {
		return nil
	}
	m.accesses.Add(1)
	return m.blocks[id]
}

// Peek returns block id without counting an access. It is for structural
// maintenance (linking, MBR updates, rebuilds) that the paper does not count
// as query-time block accesses.
func (m *Manager) Peek(id int) *Block {
	if id < 0 || id >= len(m.blocks) {
		return nil
	}
	return m.blocks[id]
}

// Accesses returns the number of block reads since the last ResetAccesses.
func (m *Manager) Accesses() int64 { return m.accesses.Load() }

// ResetAccesses zeroes the access counter and returns the previous value.
func (m *Manager) ResetAccesses() int64 { return m.accesses.Swap(0) }

// SizeBytes returns the total storage footprint of all blocks: headers plus
// full capacity slots (external-memory pages are fixed size whether full or
// not).
func (m *Manager) SizeBytes() int64 {
	return int64(len(m.blocks)) * int64(blockHeaderBytes+m.capacity*pointBytes)
}

// Append adds p to block b. It panics if the block is full: callers must
// check HasSpace first (packing and insertion logic control fullness).
func (b *Block) Append(p geom.Point) {
	if len(b.pts) >= cap(b.pts) && b.freeSlot() == -1 {
		panic("store: append to full block")
	}
	if i := b.freeSlot(); i >= 0 {
		b.pts[i] = p
		b.deleted[i] = false
		b.live++
		return
	}
	b.pts = append(b.pts, p)
	b.deleted = append(b.deleted, false)
	b.live++
}

// freeSlot returns a deleted slot that can be reused, or -1.
func (b *Block) freeSlot() int {
	if b.live == len(b.pts) {
		return -1
	}
	for i, d := range b.deleted {
		if d {
			return i
		}
	}
	return -1
}

// HasSpace reports whether b can accept one more point, either in a fresh
// slot or by reusing a deleted slot ("If the predicted block has space for p
// (e.g., space left by a deleted point), we simply place p in the block",
// §5).
func (b *Block) HasSpace() bool {
	return b.live < cap(b.pts)
}

// Delete marks the point at slot i deleted and swaps it with the last live
// slot, mirroring the paper's deletion ("we swap p with the last point in
// this block and mark p as deleted", §5). The block is never deallocated, so
// error bounds remain valid.
func (b *Block) Delete(i int) {
	if i < 0 || i >= len(b.pts) || b.deleted[i] {
		return
	}
	last := len(b.pts) - 1
	for last > i && b.deleted[last] {
		last--
	}
	b.pts[i], b.pts[last] = b.pts[last], b.pts[i]
	b.deleted[i], b.deleted[last] = b.deleted[last], b.deleted[i]
	b.deleted[last] = true
	b.live--
}

// Link splices block nb into the list directly after block b. Both blocks
// must belong to m.
func (m *Manager) Link(b, nb *Block) {
	nb.Next = b.Next
	nb.Prev = b.ID
	if b.Next != NilBlock {
		m.blocks[b.Next].Prev = nb.ID
	}
	b.Next = nb.ID
}

// Chain returns the ids of b and all Inserted blocks chained directly after
// it, i.e. the overflow run that a point query must scan in addition to the
// base block (§5: inserted blocks are placed "as the next block of the
// predicted block").
func (m *Manager) Chain(b *Block) []int {
	ids := []int{b.ID}
	for next := b.Next; next != NilBlock; {
		nb := m.blocks[next]
		if !nb.Inserted {
			break
		}
		ids = append(ids, nb.ID)
		next = nb.Next
	}
	return ids
}

// Pack distributes pts into consecutive new blocks of at most Capacity points
// each, in slice order, linking them into a list. It returns the id of the
// first block created, and the number of blocks. Packing an empty slice
// still allocates one empty block so every leaf owns at least one block.
func (m *Manager) Pack(pts []geom.Point) (first, count int) {
	first = len(m.blocks)
	var prev *Block
	b := m.Alloc()
	count = 1
	for _, p := range pts {
		if !b.HasSpace() {
			nb := m.Alloc()
			nb.Prev = b.ID
			b.Next = nb.ID
			prev, b = b, nb
			_ = prev
			count++
		}
		b.Append(p)
	}
	return first, count
}

// LinkRuns connects the tail of the run ending at tailID to the head of the
// run starting at headID, preserving global scan order across leaves.
func (m *Manager) LinkRuns(tailID, headID int) {
	if tailID == NilBlock || headID == NilBlock {
		return
	}
	m.blocks[tailID].Next = headID
	m.blocks[headID].Prev = tailID
}
