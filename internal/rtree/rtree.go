// Package rtree is the shared R-tree engine behind the two R-tree baselines
// of §6.1: the revised R*-tree (internal/rstar) and the rank-space
// Hilbert-packed R-tree HRR (internal/hrr). It provides the node structure,
// exact window queries, the best-first kNN algorithm of Roussopoulos et
// al. [40], deletion with tree condensation, and insertion parameterised by
// a ChooseSubtree/Split policy so the variants differ only in their
// policies and construction.
//
// Every node visited during a query counts as one block access, matching the
// paper's cost model where inner tree nodes are pages too.
package rtree

import (
	"container/heap"
	"sync/atomic"

	"rsmi/internal/geom"
)

// DefaultFanout is the paper's node capacity of 100 entries (§6.1: internal
// nodes store up to 100 MBRs, leaves up to 100 points).
const DefaultFanout = 100

// nodeHeaderBytes approximates per-node page overhead.
const nodeHeaderBytes = 16

// entryBytes is the size of one node entry: an MBR (4 float64) plus a child
// pointer or point payload.
const entryBytes = 40

// Node is an R-tree node: a leaf holds points, an internal node holds child
// nodes. MBRs are maintained on every structural change.
type Node struct {
	MBR      geom.Rect
	Leaf     bool
	Points   []geom.Point
	Children []*Node
	parent   *Node
}

// Policy supplies the variant-specific insertion behaviour.
type Policy interface {
	// ChooseSubtree picks the child of n to descend into for inserting r.
	ChooseSubtree(n *Node, p geom.Point) *Node
	// SplitLeaf distributes the points of an overflowing leaf into two
	// groups.
	SplitLeaf(pts []geom.Point) (a, b []geom.Point)
	// SplitInternal distributes the children of an overflowing internal
	// node into two groups.
	SplitInternal(ch []*Node) (a, b []*Node)
}

// Reinserter is an optional Policy extension implementing R*-style forced
// reinsertion: on the first leaf overflow of an insertion, PickReinsert
// returns the entries to remove and re-insert instead of splitting. A nil
// return falls through to a split.
type Reinserter interface {
	PickReinsert(leaf *Node) []geom.Point
}

// Tree is an R-tree with pluggable insertion policy.
type Tree struct {
	root   *Node
	fanout int
	size   int
	nodes  int
	height int
	policy Policy
	// accesses is atomic: the baseline engines allow concurrent readers
	// (RWMutex read locks), and every query counts node visits.
	accesses   atomic.Int64
	inReinsert bool // latch: forced reinsertion happens once per insertion
}

// New returns an empty tree using the policy. Fanout 0 selects
// DefaultFanout.
func New(policy Policy, fanout int) *Tree {
	if fanout == 0 {
		fanout = DefaultFanout
	}
	if fanout < 4 {
		fanout = 4
	}
	return &Tree{
		root:   &Node{Leaf: true, MBR: geom.EmptyRect()},
		fanout: fanout,
		nodes:  1,
		height: 1,
		policy: policy,
	}
}

// BulkLeaves builds a tree bottom-up from pre-packed leaves: leaves[i] holds
// the points of the i-th leaf page in the desired order (e.g. rank-space
// Hilbert order for HRR). Upper levels pack every `fanout` nodes.
func BulkLeaves(policy Policy, fanout int, leaves [][]geom.Point) *Tree {
	t := New(policy, fanout)
	if len(leaves) == 0 {
		return t
	}
	level := make([]*Node, 0, len(leaves))
	t.nodes = 0
	t.size = 0
	for _, pts := range leaves {
		n := &Node{
			Leaf:   true,
			Points: append([]geom.Point(nil), pts...),
			MBR:    geom.BoundingRect(pts),
		}
		t.size += len(pts)
		t.nodes++
		level = append(level, n)
	}
	t.height = 1
	for len(level) > 1 {
		var up []*Node
		for i := 0; i < len(level); i += t.fanout {
			j := i + t.fanout
			if j > len(level) {
				j = len(level)
			}
			parent := &Node{MBR: geom.EmptyRect()}
			for _, c := range level[i:j] {
				c.parent = parent
				parent.Children = append(parent.Children, c)
				parent.MBR = parent.MBR.Union(c.MBR)
			}
			t.nodes++
			up = append(up, parent)
		}
		level = up
		t.height++
	}
	t.root = level[0]
	return t
}

// Root returns the root node (read-only use by policies and tests).
func (t *Tree) Root() *Node { return t.root }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// Nodes returns the number of pages.
func (t *Tree) Nodes() int { return t.nodes }

// Leaves returns the number of leaf pages.
func (t *Tree) Leaves() int {
	count := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf {
			count++
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.root)
	return count
}

// SizeBytes reports the fixed-page storage footprint.
func (t *Tree) SizeBytes() int64 {
	return int64(t.nodes) * int64(nodeHeaderBytes+t.fanout*entryBytes)
}

// Accesses returns node accesses since the last reset.
func (t *Tree) Accesses() int64 { return t.accesses.Load() }

// ResetAccesses zeroes the access counter.
func (t *Tree) ResetAccesses() { t.accesses.Store(0) }

// visit counts one node access.
func (t *Tree) visit(*Node) { t.accesses.Add(1) }

// PointQuery reports whether a point with exactly q's coordinates is stored.
func (t *Tree) PointQuery(q geom.Point) bool {
	return t.findLeaf(t.root, q) != nil
}

// findLeaf returns the leaf containing q, descending every subtree whose MBR
// covers q (MBRs may overlap, so several paths can apply).
func (t *Tree) findLeaf(n *Node, q geom.Point) *Node {
	if !n.MBR.Contains(q) {
		return nil
	}
	t.visit(n)
	if n.Leaf {
		for _, p := range n.Points {
			if p == q {
				return n
			}
		}
		return nil
	}
	for _, c := range n.Children {
		if found := t.findLeaf(c, q); found != nil {
			return found
		}
	}
	return nil
}

// WindowQuery returns the exact set of points inside q.
func (t *Tree) WindowQuery(q geom.Rect) []geom.Point {
	var out []geom.Point
	var walk func(n *Node)
	walk = func(n *Node) {
		if !n.MBR.Intersects(q) {
			return
		}
		t.visit(n)
		if n.Leaf {
			for _, p := range n.Points {
				if q.Contains(p) {
					out = append(out, p)
				}
			}
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// knnEntry is a best-first queue element: a node or a point.
type knnEntry struct {
	dist2 float64
	node  *Node
	pt    geom.Point
	isPt  bool
}

type knnQueue []knnEntry

func (q knnQueue) Len() int            { return len(q) }
func (q knnQueue) Less(i, j int) bool  { return q[i].dist2 < q[j].dist2 }
func (q knnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x interface{}) { *q = append(*q, x.(knnEntry)) }
func (q *knnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// KNN returns the exact k nearest neighbours of q, closest first, using the
// best-first algorithm [40].
func (t *Tree) KNN(q geom.Point, k int) []geom.Point {
	if k <= 0 || t.size == 0 {
		return nil
	}
	pq := &knnQueue{}
	heap.Init(pq)
	heap.Push(pq, knnEntry{dist2: t.root.MBR.MinDist2(q), node: t.root})
	var out []geom.Point
	for pq.Len() > 0 && len(out) < k {
		e := heap.Pop(pq).(knnEntry)
		if e.isPt {
			out = append(out, e.pt)
			continue
		}
		t.visit(e.node)
		if e.node.Leaf {
			for _, p := range e.node.Points {
				heap.Push(pq, knnEntry{dist2: q.Dist2(p), pt: p, isPt: true})
			}
			continue
		}
		for _, c := range e.node.Children {
			heap.Push(pq, knnEntry{dist2: c.MBR.MinDist2(q), node: c})
		}
	}
	return out
}

// Insert adds p using the tree's policy. If the policy implements
// Reinserter, the first leaf overflow of an insertion triggers forced
// reinsertion instead of an immediate split (R* OverflowTreatment).
func (t *Tree) Insert(p geom.Point) {
	leaf := t.chooseLeaf(t.root, p)
	leaf.Points = append(leaf.Points, p)
	leaf.MBR = leaf.MBR.ExtendPoint(p)
	t.size++
	t.adjustUp(leaf, p)
	if len(leaf.Points) <= t.fanout {
		return
	}
	if r, ok := t.policy.(Reinserter); ok && !t.inReinsert {
		if removed := r.PickReinsert(leaf); len(removed) > 0 {
			t.inReinsert = true
			t.removePoints(leaf, removed)
			for _, q := range removed {
				t.Insert(q)
			}
			t.inReinsert = false
			if len(leaf.Points) > t.fanout {
				t.splitNode(leaf)
			}
			return
		}
	}
	t.splitNode(leaf)
}

// removePoints detaches the given points from the leaf and recomputes MBRs.
func (t *Tree) removePoints(leaf *Node, pts []geom.Point) {
	drop := make(map[geom.Point]int, len(pts))
	for _, p := range pts {
		drop[p]++
	}
	kept := leaf.Points[:0]
	for _, p := range leaf.Points {
		if drop[p] > 0 {
			drop[p]--
			continue
		}
		kept = append(kept, p)
	}
	leaf.Points = kept
	t.size -= len(pts)
	recomputeUp(leaf)
}

func (t *Tree) chooseLeaf(n *Node, p geom.Point) *Node {
	for !n.Leaf {
		n = t.policy.ChooseSubtree(n, p)
	}
	return n
}

// adjustUp extends ancestor MBRs to cover p.
func (t *Tree) adjustUp(n *Node, p geom.Point) {
	for a := n.parent; a != nil; a = a.parent {
		a.MBR = a.MBR.ExtendPoint(p)
	}
}

// splitNode splits an overflowing node and propagates overflow upward.
func (t *Tree) splitNode(n *Node) {
	var sibling *Node
	if n.Leaf {
		a, b := t.policy.SplitLeaf(n.Points)
		n.Points = a
		n.MBR = geom.BoundingRect(a)
		sibling = &Node{Leaf: true, Points: b, MBR: geom.BoundingRect(b)}
	} else {
		a, b := t.policy.SplitInternal(n.Children)
		n.Children = a
		n.MBR = unionOf(a)
		for _, c := range a {
			c.parent = n
		}
		sibling = &Node{Children: b, MBR: unionOf(b)}
		for _, c := range b {
			c.parent = sibling
		}
	}
	t.nodes++
	if n.parent == nil {
		// Root split: grow the tree.
		newRoot := &Node{MBR: n.MBR.Union(sibling.MBR), Children: []*Node{n, sibling}}
		n.parent = newRoot
		sibling.parent = newRoot
		t.root = newRoot
		t.nodes++
		t.height++
		return
	}
	parent := n.parent
	sibling.parent = parent
	parent.Children = append(parent.Children, sibling)
	// n's MBR shrank; recompute ancestors exactly.
	recomputeUp(parent)
	if len(parent.Children) > t.fanout {
		t.splitNode(parent)
	}
}

func unionOf(ch []*Node) geom.Rect {
	r := geom.EmptyRect()
	for _, c := range ch {
		r = r.Union(c.MBR)
	}
	return r
}

func recomputeUp(n *Node) {
	for ; n != nil; n = n.parent {
		if n.Leaf {
			n.MBR = geom.BoundingRect(n.Points)
			continue
		}
		n.MBR = unionOf(n.Children)
	}
}

// Delete removes the point with exactly p's coordinates, condensing the tree
// if a leaf underflows (below 40% fill), reinserting orphaned points.
func (t *Tree) Delete(p geom.Point) bool {
	leaf := t.findLeaf(t.root, p)
	if leaf == nil {
		return false
	}
	for i, q := range leaf.Points {
		if q == p {
			last := len(leaf.Points) - 1
			leaf.Points[i] = leaf.Points[last]
			leaf.Points = leaf.Points[:last]
			break
		}
	}
	t.size--
	minFill := t.fanout * 2 / 5
	if leaf.parent != nil && len(leaf.Points) < minFill {
		// Condense: remove the leaf, reinsert its points.
		orphans := append([]geom.Point(nil), leaf.Points...)
		t.removeChild(leaf.parent, leaf)
		t.size -= len(orphans)
		for _, o := range orphans {
			t.Insert(o)
		}
	} else {
		recomputeUp(leaf)
	}
	return true
}

// removeChild detaches c from parent, condensing upward if the parent
// underflows to empty (single-child chains are tolerated; R-trees allow
// them transiently).
func (t *Tree) removeChild(parent, c *Node) {
	for i, ch := range parent.Children {
		if ch == c {
			last := len(parent.Children) - 1
			parent.Children[i] = parent.Children[last]
			parent.Children = parent.Children[:last]
			break
		}
	}
	t.nodes--
	if len(parent.Children) == 0 && parent.parent != nil {
		t.removeChild(parent.parent, parent)
		return
	}
	recomputeUp(parent)
	// Shrink the root if it has a single internal child.
	for !t.root.Leaf && len(t.root.Children) == 1 {
		t.root = t.root.Children[0]
		t.root.parent = nil
		t.nodes--
		t.height--
	}
}

// Fanout returns the node capacity.
func (t *Tree) Fanout() int { return t.fanout }
