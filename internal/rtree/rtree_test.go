package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"rsmi/internal/dataset"
	"rsmi/internal/geom"
	"rsmi/internal/index"
)

// midSplitPolicy is a minimal valid policy for engine tests: descend by
// least enlargement, split by coordinate-sorted halves.
type midSplitPolicy struct{}

func (midSplitPolicy) ChooseSubtree(n *Node, p geom.Point) *Node {
	pr := geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
	best := n.Children[0]
	bestEn := best.MBR.Enlargement(pr)
	for _, c := range n.Children[1:] {
		if en := c.MBR.Enlargement(pr); en < bestEn {
			best, bestEn = c, en
		}
	}
	return best
}

func (midSplitPolicy) SplitLeaf(pts []geom.Point) ([]geom.Point, []geom.Point) {
	s := append([]geom.Point(nil), pts...)
	sort.Slice(s, func(i, j int) bool { return s[i].Less(s[j]) })
	mid := len(s) / 2
	return append([]geom.Point(nil), s[:mid]...), append([]geom.Point(nil), s[mid:]...)
}

func (midSplitPolicy) SplitInternal(ch []*Node) ([]*Node, []*Node) {
	s := append([]*Node(nil), ch...)
	sort.Slice(s, func(i, j int) bool {
		return s[i].MBR.Center().Less(s[j].MBR.Center())
	})
	mid := len(s) / 2
	return append([]*Node(nil), s[:mid]...), append([]*Node(nil), s[mid:]...)
}

func TestInsertThenQueries(t *testing.T) {
	tr := New(midSplitPolicy{}, 16)
	pts := dataset.Generate(dataset.Skewed, 3000, 1)
	for _, p := range pts {
		tr.Insert(p)
	}
	if tr.Len() != 3000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, p := range pts {
		if !tr.PointQuery(p) {
			t.Fatalf("point %v lost", p)
		}
	}
	oracle := index.NewLinear(pts)
	w := geom.Rect{MinX: 0.2, MinY: 0.0, MaxX: 0.5, MaxY: 0.2}
	got, want := tr.WindowQuery(w), oracle.WindowQuery(w)
	if len(got) != len(want) || index.Recall(got, want) != 1 {
		t.Fatalf("window: %d vs %d", len(got), len(want))
	}
	q := geom.Pt(0.3, 0.1)
	g, wnt := tr.KNN(q, 20), oracle.KNN(q, 20)
	for i := range wnt {
		if q.Dist2(g[i]) != q.Dist2(wnt[i]) {
			t.Fatalf("kNN mismatch at %d", i)
		}
	}
}

func TestMBRInvariantAfterInserts(t *testing.T) {
	tr := New(midSplitPolicy{}, 8)
	pts := dataset.Generate(dataset.Normal, 1000, 2)
	for _, p := range pts {
		tr.Insert(p)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Leaf {
			for _, p := range n.Points {
				if !n.MBR.Contains(p) {
					t.Fatalf("leaf MBR %v misses %v", n.MBR, p)
				}
			}
			return
		}
		for _, c := range n.Children {
			if !n.MBR.ContainsRect(c.MBR) {
				t.Fatalf("parent MBR %v misses child %v", n.MBR, c.MBR)
			}
			if c.parent != n {
				t.Fatal("broken parent pointer")
			}
			walk(c)
		}
	}
	walk(tr.Root())
}

func TestBulkLeavesStructure(t *testing.T) {
	pts := dataset.Generate(dataset.Uniform, 1000, 3)
	var leaves [][]geom.Point
	for i := 0; i < len(pts); i += 10 {
		leaves = append(leaves, pts[i:i+10])
	}
	tr := BulkLeaves(midSplitPolicy{}, 10, leaves)
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// 100 leaves at fanout 10 -> 10 internals -> 1 root: height 3.
	if tr.Height() != 3 {
		t.Errorf("Height = %d, want 3", tr.Height())
	}
	if tr.Leaves() != 100 {
		t.Errorf("Leaves = %d, want 100", tr.Leaves())
	}
	for _, p := range pts {
		if !tr.PointQuery(p) {
			t.Fatalf("bulk point %v lost", p)
		}
	}
}

func TestBulkLeavesEmpty(t *testing.T) {
	tr := BulkLeaves(midSplitPolicy{}, 10, nil)
	if tr.Len() != 0 || tr.PointQuery(geom.Pt(0, 0)) {
		t.Error("empty bulk tree misbehaves")
	}
}

func TestDeleteCondensesAndPreserves(t *testing.T) {
	tr := New(midSplitPolicy{}, 8)
	pts := dataset.Generate(dataset.Uniform, 800, 4)
	for _, p := range pts {
		tr.Insert(p)
	}
	nodesBefore := tr.Nodes()
	// Delete 80% of points: underflows must condense nodes away.
	for _, p := range pts[:640] {
		if !tr.Delete(p) {
			t.Fatalf("delete %v failed", p)
		}
	}
	if tr.Len() != 160 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Nodes() >= nodesBefore {
		t.Errorf("no condensation: %d -> %d nodes", nodesBefore, tr.Nodes())
	}
	for _, p := range pts[640:] {
		if !tr.PointQuery(p) {
			t.Fatalf("survivor %v lost", p)
		}
	}
	if tr.Delete(geom.Pt(42, 42)) {
		t.Error("deleting absent point succeeded")
	}
}

func TestAccessCounting(t *testing.T) {
	tr := New(midSplitPolicy{}, 8)
	for _, p := range dataset.Generate(dataset.Uniform, 500, 5) {
		tr.Insert(p)
	}
	tr.ResetAccesses()
	tr.WindowQuery(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	full := tr.Accesses()
	if full < int64(tr.Nodes()) {
		t.Errorf("full-space window visited %d < %d nodes", full, tr.Nodes())
	}
	tr.ResetAccesses()
	tr.WindowQuery(geom.Rect{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3})
	if tr.Accesses() != 0 {
		t.Errorf("disjoint window visited %d nodes", tr.Accesses())
	}
}

func TestSizeBytesGrows(t *testing.T) {
	small := New(midSplitPolicy{}, 8)
	small.Insert(geom.Pt(0.5, 0.5))
	big := New(midSplitPolicy{}, 8)
	for _, p := range dataset.Generate(dataset.Uniform, 2000, 6) {
		big.Insert(p)
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Error("size accounting is not monotone in nodes")
	}
}

// Engine property: any interleaving of inserts and deletes leaves the tree
// consistent with a set-model oracle.
func TestInsertDeleteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(midSplitPolicy{}, 4+rng.Intn(12))
		live := map[geom.Point]bool{}
		for op := 0; op < 300; op++ {
			p := geom.Pt(float64(rng.Intn(50))/50, float64(rng.Intn(50))/50)
			if rng.Intn(3) == 0 && len(live) > 0 {
				// The engine stores duplicates; the model tracks presence.
				got := tr.Delete(p)
				if got != live[p] {
					return false
				}
				if got {
					delete(live, p)
				}
				continue
			}
			if live[p] {
				continue // keep set semantics: skip duplicate inserts
			}
			tr.Insert(p)
			live[p] = true
		}
		for p := range live {
			if !tr.PointQuery(p) {
				return false
			}
		}
		return tr.Len() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestReinsertLatchBehaviour(t *testing.T) {
	// A policy with PickReinsert returning nil must fall back to splits.
	tr := New(nilReinsertPolicy{}, 8)
	for _, p := range dataset.Generate(dataset.Uniform, 200, 7) {
		tr.Insert(p)
	}
	if tr.Len() != 200 || tr.Height() < 2 {
		t.Errorf("nil reinserter: len=%d height=%d", tr.Len(), tr.Height())
	}
}

type nilReinsertPolicy struct{ midSplitPolicy }

func (nilReinsertPolicy) PickReinsert(*Node) []geom.Point { return nil }
