// Package gridfile implements the Grid File baseline of §6.1 [33]: the data
// space is partitioned with a regular √(n/B) × √(n/B) grid (one block per
// cell under a uniform distribution), points are assigned to cells by their
// coordinates, and stored by cell. A cell table maps grid cells to their
// data blocks; the table is an in-memory directory whose lookups are free,
// while the data blocks are counted accesses — which is exactly why Grid
// shows the paper's highest block-access counts on skewed data (Fig. 6b)
// while staying time-competitive on uniform data.
package gridfile

import (
	"math"
	"time"

	"rsmi/internal/geom"
	"rsmi/internal/index"
	"rsmi/internal/store"
)

// Grid is the Grid File baseline.
type Grid struct {
	store *store.Manager
	norm  geom.Rect
	side  int
	// cells[cy*side+cx] lists the block ids of the cell, in fill order.
	cells [][]int
	n     int
	built time.Duration
}

var _ index.Index = (*Grid)(nil)

// New builds a Grid File with a √(n/B) × √(n/B) grid over the points'
// bounding box.
func New(pts []geom.Point, blockCapacity int) *Grid {
	start := time.Now()
	g := &Grid{
		store: store.NewManager(blockCapacity),
		norm:  geom.BoundingRect(pts),
		n:     len(pts),
	}
	b := g.store.Capacity()
	g.side = int(math.Ceil(math.Sqrt(float64(len(pts)) / float64(b))))
	if g.side < 1 {
		g.side = 1
	}
	g.cells = make([][]int, g.side*g.side)

	// Bucket points per cell, then pack each cell's points.
	buckets := make([][]geom.Point, g.side*g.side)
	for _, p := range pts {
		c := g.cellOf(p)
		buckets[c] = append(buckets[c], p)
	}
	for c, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		first, count := g.store.Pack(bucket)
		for id := first; id < first+count; id++ {
			g.cells[c] = append(g.cells[c], id)
		}
	}
	g.built = time.Since(start)
	return g
}

// cellOf maps p to its cell index, clamping to the grid (points inserted
// outside the build-time bounding box go to border cells).
func (g *Grid) cellOf(p geom.Point) int {
	cx := g.axisCell(p.X, g.norm.MinX, g.norm.MaxX)
	cy := g.axisCell(p.Y, g.norm.MinY, g.norm.MaxY)
	return cy*g.side + cx
}

func (g *Grid) axisCell(v, lo, hi float64) int {
	if hi <= lo {
		return 0
	}
	c := int((v - lo) / (hi - lo) * float64(g.side))
	if c < 0 {
		return 0
	}
	if c >= g.side {
		return g.side - 1
	}
	return c
}

// cellRect returns the spatial extent of cell (cx, cy).
func (g *Grid) cellRect(cx, cy int) geom.Rect {
	w := (g.norm.MaxX - g.norm.MinX) / float64(g.side)
	h := (g.norm.MaxY - g.norm.MinY) / float64(g.side)
	return geom.Rect{
		MinX: g.norm.MinX + float64(cx)*w,
		MinY: g.norm.MinY + float64(cy)*h,
		MaxX: g.norm.MinX + float64(cx+1)*w,
		MaxY: g.norm.MinY + float64(cy+1)*h,
	}
}

// Name implements index.Index with the paper's label.
func (g *Grid) Name() string { return "Grid" }

// PointQuery implements index.Index: scan the blocks of q's cell.
func (g *Grid) PointQuery(q geom.Point) bool {
	_, _, ok := g.find(q)
	return ok
}

func (g *Grid) find(q geom.Point) (blockID, slot int, ok bool) {
	for _, id := range g.cells[g.cellOf(q)] {
		b := g.store.Read(id)
		if i := b.Find(q); i >= 0 {
			return id, i, true
		}
	}
	return 0, 0, false
}

// WindowQuery implements index.Index: scan every block of every cell
// overlapping the window. Exact.
func (g *Grid) WindowQuery(q geom.Rect) []geom.Point {
	if g.n == 0 {
		return nil
	}
	cx0 := g.axisCell(q.MinX, g.norm.MinX, g.norm.MaxX)
	cx1 := g.axisCell(q.MaxX, g.norm.MinX, g.norm.MaxX)
	cy0 := g.axisCell(q.MinY, g.norm.MinY, g.norm.MaxY)
	cy1 := g.axisCell(q.MaxY, g.norm.MinY, g.norm.MaxY)
	var out []geom.Point
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, id := range g.cells[cy*g.side+cx] {
				b := g.store.Read(id)
				b.Points(func(p geom.Point) {
					if q.Contains(p) {
						out = append(out, p)
					}
				})
			}
		}
	}
	return out
}

// KNN implements index.Index with an expanding ring search over cells: the
// cells are visited ring by ring around q's cell, pruned by MINDIST against
// the current k-th candidate, which makes the result exact. The paper notes
// Grid's kNN weakness: "the kNNs may spread in multiple cells which makes it
// uncompetitive" (§6.2.4).
func (g *Grid) KNN(q geom.Point, k int) []geom.Point {
	if k <= 0 || g.n == 0 {
		return nil
	}
	qcx := g.axisCell(q.X, g.norm.MinX, g.norm.MaxX)
	qcy := g.axisCell(q.Y, g.norm.MinY, g.norm.MaxY)
	var cand []geom.Point
	kth := math.Inf(1)
	scanCell := func(cx, cy int) {
		for _, id := range g.cells[cy*g.side+cx] {
			b := g.store.Read(id)
			b.Points(func(p geom.Point) { cand = append(cand, p) })
		}
	}
	update := func() {
		index.SortByDistance(cand, q)
		if len(cand) > 4*k { // keep the candidate pool small
			cand = cand[:4*k]
		}
		if len(cand) >= k {
			kth = q.Dist2(cand[k-1])
		}
	}
	for ring := 0; ring < 2*g.side; ring++ {
		touched := false
		for cy := qcy - ring; cy <= qcy+ring; cy++ {
			if cy < 0 || cy >= g.side {
				continue
			}
			for cx := qcx - ring; cx <= qcx+ring; cx++ {
				if cx < 0 || cx >= g.side {
					continue
				}
				// Only the ring's border cells are new.
				if ring > 0 && cx != qcx-ring && cx != qcx+ring && cy != qcy-ring && cy != qcy+ring {
					continue
				}
				// Prune cells that cannot contain a better candidate.
				if g.cellRect(cx, cy).MinDist2(q) >= kth {
					continue
				}
				scanCell(cx, cy)
				touched = true
			}
		}
		if touched {
			update()
		}
		// Stop when the next ring cannot improve the k-th candidate.
		if len(cand) >= k {
			w := (g.norm.MaxX - g.norm.MinX) / float64(g.side)
			h := (g.norm.MaxY - g.norm.MinY) / float64(g.side)
			ringDist := float64(ring) * math.Min(w, h)
			if ringDist*ringDist >= kth {
				break
			}
		}
	}
	if len(cand) > k {
		cand = cand[:k]
	}
	return cand
}

// Insert implements index.Index: the point goes to the last block of its
// cell, or a new block when full ("Grid adds a new point p to the last
// block in the cell enclosing p", §6.2.5).
func (g *Grid) Insert(p geom.Point) {
	c := g.cellOf(p)
	ids := g.cells[c]
	if len(ids) > 0 {
		last := g.store.Read(ids[len(ids)-1])
		if last.HasSpace() {
			last.Append(p)
			g.n++
			return
		}
	}
	nb := g.store.Alloc()
	nb.Append(p)
	g.cells[c] = append(g.cells[c], nb.ID)
	g.n++
}

// Delete implements index.Index.
func (g *Grid) Delete(p geom.Point) bool {
	id, slot, ok := g.find(p)
	if !ok {
		return false
	}
	g.store.Peek(id).Delete(slot)
	g.n--
	return true
}

// Len implements index.Index.
func (g *Grid) Len() int { return g.n }

// Stats implements index.Index. The cell table contributes 8 bytes per cell
// plus 8 per block reference.
func (g *Grid) Stats() index.Stats {
	table := int64(len(g.cells)) * 8
	for _, ids := range g.cells {
		table += int64(len(ids)) * 8
	}
	return index.Stats{
		Name:      g.Name(),
		SizeBytes: g.store.SizeBytes() + table,
		Height:    1,
		Blocks:    g.store.NumBlocks(),
		BuildTime: g.built,
	}
}

// Accesses implements index.Index.
func (g *Grid) Accesses() int64 { return g.store.Accesses() }

// ResetAccesses implements index.Index.
func (g *Grid) ResetAccesses() { g.store.ResetAccesses() }
