package gridfile

import (
	"math"
	"testing"

	"rsmi/internal/dataset"
	"rsmi/internal/geom"
	"rsmi/internal/index"
	"rsmi/internal/index/indextest"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, indextest.Config{
		Build: func(pts []geom.Point) index.Index {
			return New(pts, 50)
		},
		ExactWindow:     true,
		ExactKNN:        true,
		SupportsUpdates: true,
	})
}

func TestGridSideMatchesPaperFormula(t *testing.T) {
	// §6.1: a sqrt(n/B) x sqrt(n/B) grid.
	pts := dataset.Generate(dataset.Uniform, 10000, 1)
	g := New(pts, 100)
	want := int(math.Ceil(math.Sqrt(10000.0 / 100)))
	if g.side != want {
		t.Errorf("side = %d, want %d", g.side, want)
	}
}

func TestUniformFillsOneBlockPerCell(t *testing.T) {
	// Under a uniform distribution each cell holds about B points (one
	// block per cell, §6.1).
	pts := dataset.Generate(dataset.Uniform, 10000, 2)
	g := New(pts, 100)
	multi := 0
	for _, ids := range g.cells {
		if len(ids) > 2 {
			multi++
		}
	}
	if frac := float64(multi) / float64(len(g.cells)); frac > 0.1 {
		t.Errorf("%.2f of cells need >2 blocks on uniform data", frac)
	}
}

func TestSkewConcentratesBlocks(t *testing.T) {
	// On skewed data some cells need many chained blocks — the cause of
	// Grid's poor block-access numbers in Fig. 6b.
	pts := dataset.Generate(dataset.OSMLike, 10000, 3)
	g := New(pts, 100)
	max := 0
	for _, ids := range g.cells {
		if len(ids) > max {
			max = len(ids)
		}
	}
	if max < 3 {
		t.Errorf("max blocks per cell = %d; expected chaining under skew", max)
	}
}

func TestCellOfClampsOutOfRange(t *testing.T) {
	pts := dataset.Generate(dataset.Uniform, 1000, 4)
	g := New(pts, 100)
	for _, p := range []geom.Point{{X: -5, Y: 0.5}, {X: 5, Y: 0.5}, {X: 0.5, Y: -5}, {X: 0.5, Y: 5}} {
		c := g.cellOf(p)
		if c < 0 || c >= len(g.cells) {
			t.Errorf("cellOf(%v) = %d out of range", p, c)
		}
	}
}

func TestInsertAppendsToCellChain(t *testing.T) {
	pts := dataset.Generate(dataset.Uniform, 500, 5)
	g := New(pts, 10)
	p := geom.Pt(0.5, 0.5)
	c := g.cellOf(p)
	before := len(g.cells[c])
	// Fill the cell's last block, then one more insert must chain a block.
	for i := 0; i < 25; i++ {
		g.Insert(geom.Pt(0.5+float64(i)*1e-6, 0.5))
	}
	if len(g.cells[c]) <= before {
		t.Errorf("cell chain did not grow: %d -> %d", before, len(g.cells[c]))
	}
}

func TestEmptyGrid(t *testing.T) {
	g := New(nil, 100)
	if g.Len() != 0 {
		t.Errorf("Len = %d", g.Len())
	}
	if g.PointQuery(geom.Pt(0.5, 0.5)) {
		t.Error("empty grid found a point")
	}
	if got := g.WindowQuery(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}); len(got) != 0 {
		t.Error("empty grid window returned points")
	}
	if got := g.KNN(geom.Pt(0.5, 0.5), 5); got != nil {
		t.Error("empty grid kNN returned points")
	}
	g.Insert(geom.Pt(0.3, 0.3))
	if !g.PointQuery(geom.Pt(0.3, 0.3)) {
		t.Error("insert into empty grid failed")
	}
}

func TestStatsCountsCellTable(t *testing.T) {
	pts := dataset.Generate(dataset.Uniform, 5000, 6)
	g := New(pts, 100)
	s := g.Stats()
	if s.Height != 1 {
		t.Errorf("Grid height = %d, want 1", s.Height)
	}
	if s.SizeBytes <= g.store.SizeBytes() {
		t.Error("Stats must include the cell table overhead")
	}
}
