package plan

// Deterministic planner tests: models are seeded explicitly through
// NewStatsFromModels, so routing decisions depend only on the cost
// arithmetic — no wall-clock calibration, no flakiness.

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"rsmi/internal/geom"
)

// seededStats models the PR 5 measurement: the learned index ("RSMI")
// answers small windows cheaply but pays per row; the baseline ("RR*")
// has a high fixed cost but scans rows almost for free.
func seededStats() *Stats {
	return NewStatsFromModels(100000, map[string]Model{
		"RSMI": {PointUS: 1, WindowBaseUS: 10, WindowPerRowUS: 5, KNNBaseUS: 20, KNNPerKUS: 0.5},
		"RR*":  {PointUS: 4, WindowBaseUS: 200, WindowPerRowUS: 0.1, KNNBaseUS: 100, KNNPerKUS: 5},
	})
}

func TestChooseRoutesBySelectivity(t *testing.T) {
	s := seededStats()

	// A tiny window selects a handful of rows: the learned index's low
	// base cost wins, and the query is cheap enough to coalesce.
	tiny := Query{Kind: KindWindow, Window: geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.501, MaxY: 0.501}}
	pl := s.Choose(tiny)
	if pl.Backend != "RSMI" {
		t.Fatalf("tiny window routed to %q, want RSMI", pl.Backend)
	}
	if !pl.Coalesce || pl.Batch != 32 {
		t.Fatalf("tiny window plan %+v, want coalescable with batch 32", pl)
	}
	if pl.EstRows > 1 {
		t.Fatalf("tiny window estimated %f rows, want ~0.1", pl.EstRows)
	}

	// A huge window selects tens of thousands of rows: per-row cost
	// dominates, the baseline wins, and the scan should run directly.
	huge := Query{Kind: KindWindow, Window: geom.Rect{MinX: 0, MinY: 0, MaxX: 0.7, MaxY: 0.7}}
	pl = s.Choose(huge)
	if pl.Backend != "RR*" {
		t.Fatalf("huge window routed to %q, want RR*", pl.Backend)
	}
	if pl.Coalesce || pl.Batch != 1 {
		t.Fatalf("huge window plan %+v, want direct (batch 1, no coalesce)", pl)
	}
	if pl.EstRows < 10000 {
		t.Fatalf("huge window estimated %f rows, want tens of thousands", pl.EstRows)
	}

	// Crossover sanity: the estimated costs actually order the way the
	// routing implies.
	if rsmiM, _ := s.Model("RSMI"); rsmiM.WindowBaseUS+rsmiM.WindowPerRowUS*pl.EstRows <= pl.EstCostUS {
		t.Fatalf("RSMI cost %f should exceed the chosen estimate %f on the huge window",
			rsmiM.WindowBaseUS+rsmiM.WindowPerRowUS*pl.EstRows, pl.EstCostUS)
	}

	// Point probes and small-k kNN go to the learned index; large-k kNN
	// crosses over to the baseline (20 + 0.5k vs 100 + 5k never crosses
	// — RSMI is cheaper at every k here, so both stay on RSMI).
	if pl := s.Choose(Query{Kind: KindPoint, Point: geom.Pt(0.5, 0.5)}); pl.Backend != "RSMI" {
		t.Fatalf("point probe routed to %q, want RSMI", pl.Backend)
	}
	if pl := s.Choose(Query{Kind: KindKNN, Point: geom.Pt(0.5, 0.5), K: 10}); pl.Backend != "RSMI" {
		t.Fatalf("kNN routed to %q, want RSMI", pl.Backend)
	}
}

func TestChooseCountersAndRouting(t *testing.T) {
	s := seededStats()
	tiny := Query{Kind: KindWindow, Window: geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.501, MaxY: 0.501}}
	huge := Query{Kind: KindWindow, Window: geom.Rect{MinX: 0, MinY: 0, MaxX: 0.7, MaxY: 0.7}}
	for i := 0; i < 3; i++ {
		s.Choose(tiny)
	}
	for i := 0; i < 2; i++ {
		s.Choose(huge)
	}
	c := s.Counters()
	if c.Planned != 5 {
		t.Fatalf("Planned = %d, want 5", c.Planned)
	}
	if c.Routed["RSMI"] != 3 || c.Routed["RR*"] != 2 {
		t.Fatalf("Routed = %v, want RSMI:3 RR*:2", c.Routed)
	}
}

// Observe must adapt routing between near-tied backends: when the
// chosen backend keeps costing more than estimated, its EWMA
// correction grows until the runner-up wins the same query. The
// models here sit ~1.25× apart — inside the [adjMin, adjMax] trim
// range, which is exactly the regime the corrections exist for
// (calibration noise between closely-priced backends).
func TestObserveFlipsRouting(t *testing.T) {
	s := NewStatsFromModels(100000, map[string]Model{
		"A": {PointUS: 1, WindowBaseUS: 10, WindowPerRowUS: 1, KNNBaseUS: 20, KNNPerKUS: 0.5},
		"B": {PointUS: 2, WindowBaseUS: 15, WindowPerRowUS: 1, KNNBaseUS: 30, KNNPerKUS: 0.5},
	})
	q := Query{Kind: KindWindow, Window: geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.51, MaxY: 0.51}}
	pl := s.Choose(q)
	if pl.Backend != "A" {
		t.Fatalf("initial routing to %q, want A", pl.Backend)
	}
	// Keep reporting 100× the estimate; A's correction climbs toward the
	// clamp, which is more than enough to push it past B here.
	for i := 0; i < 2000; i++ {
		pl = s.Choose(q)
		if pl.Backend != "A" {
			break
		}
		s.Observe(pl, q, pl.EstCostUS*100)
	}
	if pl = s.Choose(q); pl.Backend != "B" {
		t.Fatalf("after sustained mispredictions the query still routes to %q, want B", pl.Backend)
	}
	c := s.Counters()
	if c.Mispredicts == 0 {
		t.Fatalf("100x-off observations counted no mispredictions")
	}
}

// Corrections are a trim knob, not a steering wheel: across a model
// gap wider than adjMax·(1/adjMin), no amount of observed overrun may
// re-route the query. Observations are wall-clock on a shared machine
// and only the routed backend is ever observed, so letting them cross
// large gaps turns transient load into permanent mis-routing (gross
// regime change is recalibration's job).
func TestObserveNeverCrossesWideGaps(t *testing.T) {
	s := seededStats()
	// Window 0.01² over n=100k uniform → ~10 rows: RSMI ≈ 60µs,
	// RR* ≈ 201µs — a 3.35× gap, beyond the trim range.
	q := Query{Kind: KindWindow, Window: geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.51, MaxY: 0.51}}
	for i := 0; i < 5000; i++ {
		pl := s.Choose(q)
		if pl.Backend != "RSMI" {
			t.Fatalf("observation %d re-routed across a >%gx model gap to %q",
				i, float64(adjMax)/adjMin, pl.Backend)
		}
		s.Observe(pl, q, pl.EstCostUS*1e6)
	}
}

func TestObserveBounds(t *testing.T) {
	s := seededStats()
	q := Query{Kind: KindPoint, Point: geom.Pt(0.5, 0.5)}
	pl := s.Choose(q)
	base := pl.EstCostUS

	// Accurate observations are not mispredictions and barely move the
	// estimate.
	s.Observe(pl, q, pl.EstCostUS)
	if c := s.Counters(); c.Mispredicts != 0 {
		t.Fatalf("an exact observation counted as a misprediction")
	}
	if got := s.Choose(q).EstCostUS; math.Abs(got-base)/base > 1e-9 {
		t.Fatalf("exact observation moved the estimate %f -> %f", base, got)
	}

	// The correction factor clamps at adjMax no matter how wild the
	// observations are.
	for i := 0; i < 1000; i++ {
		pl = s.Choose(q)
		s.Observe(pl, q, pl.EstCostUS*1e6)
	}
	if got := s.Choose(q).EstCostUS; got > base*adjMax*1.01 {
		t.Fatalf("correction exceeded the %gx clamp: %f vs base %f", float64(adjMax), got, base)
	}
}

func TestSelectivityEstimator(t *testing.T) {
	// A uniform grid of points: the marginal-CDF product should estimate
	// the area fraction closely.
	var pts []geom.Point
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			pts = append(pts, geom.Pt((float64(i)+0.5)/64, (float64(j)+0.5)/64))
		}
	}
	s := NewStats(pts)
	for _, tc := range []struct {
		r    geom.Rect
		want float64
	}{
		{geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 1},
		{geom.Rect{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 0.5}, 0.25},
		{geom.Rect{MinX: 0.25, MinY: 0.25, MaxX: 0.75, MaxY: 0.75}, 0.25},
		{geom.Rect{MinX: 0.4, MinY: 0, MaxX: 0.6, MaxY: 1}, 0.2},
	} {
		got := s.Selectivity(tc.r)
		if math.Abs(got-tc.want) > 0.05 {
			t.Errorf("Selectivity(%+v) = %f, want ~%f", tc.r, got, tc.want)
		}
	}
	if rows := s.EstRows(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}); math.Abs(rows-float64(len(pts))) > float64(len(pts))/10 {
		t.Errorf("EstRows(full space) = %f, want ~%d", rows, len(pts))
	}
}

func TestChooseWithoutModels(t *testing.T) {
	s := NewStats([]geom.Point{geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.9)})
	pl := s.Choose(Query{Kind: KindPoint, Point: geom.Pt(0.1, 0.1)})
	if pl.Backend != "" || pl.Batch != 1 {
		t.Fatalf("uncalibrated Choose = %+v, want empty fallback plan", pl)
	}
}

// TestProbeDurScalesWithCost pins the calibration probe budget: a cell
// whose calls are expensive (a large-k kNN batch) gets a longer
// measurement window than a cheap cell (a point batch), bounded by the
// floor and cap. The old fixed window handed every cell the same clock
// regardless of per-call cost, so expensive cells fitted only a
// handful of calls and their fitted ordering was a coin flip.
func TestProbeDurScalesWithCost(t *testing.T) {
	pointCell := probeDur(50 * time.Microsecond)
	knnCell := probeDur(10 * time.Millisecond)
	if pointCell != calProbeDur {
		t.Errorf("probeDur(cheap point cell) = %v, want the %v floor", pointCell, calProbeDur)
	}
	if knnCell <= pointCell {
		t.Errorf("probeDur(expensive kNN cell) = %v, not above the point cell's %v", knnCell, pointCell)
	}
	if want := 10 * time.Millisecond * calProbeMinCalls / calWorkers; knnCell != want {
		t.Errorf("probeDur(10ms) = %v, want %v (fits %d calls across %d workers)", knnCell, want, calProbeMinCalls, calWorkers)
	}
	if d := probeDur(time.Second); d != calProbeMaxDur {
		t.Errorf("probeDur(1s) = %v, want the %v cap", d, calProbeMaxDur)
	}
	if d := probeDur(0); d != calProbeDur {
		t.Errorf("probeDur(0) = %v, want the %v floor", d, calProbeDur)
	}
}

// TestRunProbesStretchesForExpensiveCalls is the integration half: a
// probe costing ~5ms per call must hold the measurement window open
// well past the floor (its window is sized to fit calProbeMinCalls),
// and every worker must complete at least one timed call.
func TestRunProbesStretchesForExpensiveCalls(t *testing.T) {
	perCall := 5 * time.Millisecond
	var calls atomic.Int64
	start := time.Now()
	us, _, err := runProbes(1, func() (int, error) {
		calls.Add(1)
		time.Sleep(perCall)
		return 0, nil
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("runProbes: %v", err)
	}
	// Window = perCall·calProbeMinCalls/calWorkers = 30ms here; sleeps
	// only ever overrun, so elapsed is a reliable lower bound.
	if want := perCall * calProbeMinCalls / calWorkers; elapsed < want {
		t.Errorf("expensive probe ran %v, want at least its %v scaled window (floor is %v)", elapsed, want, calProbeDur)
	}
	// Warm-up plus one unconditional timed call per worker.
	if n := calls.Load(); n < calWorkers+1 {
		t.Errorf("probe ran %d times, want at least %d", n, calWorkers+1)
	}
	if us <= 0 {
		t.Errorf("usPerQuery = %v, want > 0", us)
	}
}

// TestHintMatchesChooseWithoutCounters pins the advisory surface the
// serving tier's coalescer consults: Hint must produce exactly the plan
// Choose would (both directions — cheap query coalesces, expensive scan
// bypasses) while leaving the planned/routed counters untouched.
func TestHintMatchesChooseWithoutCounters(t *testing.T) {
	s := seededStats()
	tiny := Query{Kind: KindWindow, Window: geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.501, MaxY: 0.501}}
	huge := Query{Kind: KindWindow, Window: geom.Rect{MinX: 0, MinY: 0, MaxX: 0.7, MaxY: 0.7}}
	knn := Query{Kind: KindKNN, Point: geom.Pt(0.5, 0.5), K: 10}

	for _, tc := range []struct {
		name         string
		q            Query
		wantCoalesce bool
		wantBatch    int
	}{
		{"tiny-window-coalesces", tiny, true, 32},
		{"huge-window-bypasses", huge, false, 1},
		{"knn-coalesces", knn, true, 32},
	} {
		pl := s.Hint(tc.q)
		if pl.Coalesce != tc.wantCoalesce || pl.Batch != tc.wantBatch {
			t.Errorf("%s: Hint = %+v, want Coalesce=%v Batch=%d",
				tc.name, pl, tc.wantCoalesce, tc.wantBatch)
		}
		if pl.Backend == "" {
			t.Errorf("%s: Hint chose no backend", tc.name)
		}
	}

	c := s.Counters()
	if c.Planned != 0 {
		t.Fatalf("Hint bumped Planned: %+v", c)
	}
	for name, n := range c.Routed {
		if n != 0 {
			t.Fatalf("Hint bumped Routed[%s] = %d", name, n)
		}
	}
	// And Choose still counts.
	s.Choose(tiny)
	if c := s.Counters(); c.Planned != 1 || c.Routed["RSMI"] != 1 {
		t.Fatalf("Choose counters after Hint calls: %+v", c)
	}
}

// TestHintUncalibrated pins the no-models fallback: an empty plan with
// no backend, which callers must treat as "ride the coalescer".
func TestHintUncalibrated(t *testing.T) {
	s := NewStats(nil)
	pl := s.Hint(Query{Kind: KindWindow, Window: geom.Rect{MaxX: 1, MaxY: 1}})
	if pl.Backend != "" || pl.Coalesce {
		t.Fatalf("uncalibrated Hint = %+v, want empty plan", pl)
	}
}
