package plan

// MultiEngine: several backends over one logical point set, planned per
// query. It implements the full rsmi.Engine, so the serving stack puts
// it behind the same endpoints as any fixed backend (`rsmi-serve
// -planner`); reads route to the backend the cost models pick, writes
// apply to every backend to keep them answering identically.

import (
	"context"
	"fmt"
	"time"

	"rsmi"
	"rsmi/internal/geom"
	"rsmi/internal/shard"
)

// MultiEngine routes every query across its backends via the planner.
// The first backend is the primary: it defines Len and structural
// stats, and is the fallback when no cost model exists yet.
type MultiEngine struct {
	backends []rsmi.Engine
	byName   map[string]rsmi.Engine
	stats    *Stats
}

var _ rsmi.Engine = (*MultiEngine)(nil)

// NewMultiEngine builds a planner engine over the backends, which must
// already hold the same point set. Call Calibrate before serving so the
// planner has cost models to route with; until then everything routes
// to the primary.
func NewMultiEngine(stats *Stats, backends ...rsmi.Engine) (*MultiEngine, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("plan: MultiEngine needs at least one backend")
	}
	byName := make(map[string]rsmi.Engine, len(backends))
	for _, b := range backends {
		if _, dup := byName[b.Name()]; dup {
			return nil, fmt.Errorf("plan: duplicate backend name %q", b.Name())
		}
		byName[b.Name()] = b
	}
	return &MultiEngine{backends: backends, byName: byName, stats: stats}, nil
}

// Calibrate fits a cost model for every backend (see Stats.Calibrate).
func (m *MultiEngine) Calibrate(ctx context.Context) error {
	for _, b := range m.backends {
		if err := m.stats.Calibrate(ctx, b); err != nil {
			return err
		}
	}
	return nil
}

// Name identifies the planner in stats and traces.
func (m *MultiEngine) Name() string { return "Planner" }

// PlanQuery plans q without executing it.
func (m *MultiEngine) PlanQuery(q Query) Plan { return m.stats.Choose(q) }

// PlanHint is PlanQuery without counter side effects (see Stats.Hint):
// the serving tier's coalescer consults it per single query to decide
// ride-the-batch versus direct execution.
func (m *MultiEngine) PlanHint(q Query) Plan { return m.stats.Hint(q) }

// PlannerStats snapshots routing and misprediction counters.
func (m *MultiEngine) PlannerStats() Counters { return m.stats.Counters() }

// QueryStats exposes the statistics store (selectivity estimator and
// cost models).
func (m *MultiEngine) QueryStats() *Stats { return m.stats }

// engine resolves a plan's backend, falling back to the primary.
func (m *MultiEngine) engine(name string) rsmi.Engine {
	if e, ok := m.byName[name]; ok {
		return e
	}
	return m.backends[0]
}

// ExecQuery plans q, executes it on the chosen backend, feeds the
// measured cost back into the model, and returns the answer with the
// plan and actual cost attached — the planner's EXPLAIN-able entry
// point, used by the SQL front-end.
func (m *MultiEngine) ExecQuery(ctx context.Context, q Query) (Result, error) {
	return m.ExecPlanned(ctx, m.stats.Choose(q), q)
}

// ExecPlanned executes an already-chosen plan for q — the server plans
// first (so EXPLAIN can time the plan stage separately) and executes
// here. The measured cost feeds back into the chosen backend's model.
func (m *MultiEngine) ExecPlanned(ctx context.Context, pl Plan, q Query) (Result, error) {
	res, err := Execute(ctx, m.engine(pl.Backend), q)
	if err != nil {
		return Result{}, err
	}
	if pl.Backend == "" {
		pl.Backend = m.backends[0].Name()
	}
	res.Plan = pl
	m.stats.Observe(pl, q, res.ActualUS)
	return res, nil
}

// run times one routed engine call and feeds the observation back.
func (m *MultiEngine) run(pl Plan, q Query, f func(eng rsmi.Engine) error) error {
	start := time.Now()
	err := f(m.engine(pl.Backend))
	if err != nil {
		return err
	}
	m.stats.Observe(pl, q, usSince(start))
	return nil
}

func (m *MultiEngine) PointQueryContext(ctx context.Context, q geom.Point) (bool, error) {
	pq := Query{Kind: KindPoint, Point: q}
	var found bool
	err := m.run(m.stats.Choose(pq), pq, func(eng rsmi.Engine) error {
		var err error
		found, err = eng.PointQueryContext(ctx, q)
		return err
	})
	return found, err
}

func (m *MultiEngine) WindowQueryContext(ctx context.Context, q geom.Rect) ([]geom.Point, error) {
	wq := Query{Kind: KindWindow, Window: q}
	var pts []geom.Point
	err := m.run(m.stats.Choose(wq), wq, func(eng rsmi.Engine) error {
		var err error
		pts, err = eng.WindowQueryContext(ctx, q)
		return err
	})
	return pts, err
}

func (m *MultiEngine) WindowQueryAppend(ctx context.Context, dst []geom.Point, q geom.Rect) ([]geom.Point, error) {
	wq := Query{Kind: KindWindow, Window: q}
	out := dst
	err := m.run(m.stats.Choose(wq), wq, func(eng rsmi.Engine) error {
		var err error
		out, err = eng.WindowQueryAppend(ctx, dst, q)
		return err
	})
	if err != nil {
		return dst, err
	}
	return out, nil
}

// ExactWindowContext routes like a window query but executes the exact
// variant on the chosen backend (exact ≡ approximate on baselines).
func (m *MultiEngine) ExactWindowContext(ctx context.Context, q geom.Rect) ([]geom.Point, error) {
	wq := Query{Kind: KindWindow, Window: q}
	var pts []geom.Point
	err := m.run(m.stats.Choose(wq), wq, func(eng rsmi.Engine) error {
		var err error
		pts, err = eng.ExactWindowContext(ctx, q)
		return err
	})
	return pts, err
}

func (m *MultiEngine) KNNContext(ctx context.Context, q geom.Point, k int) ([]geom.Point, error) {
	kq := Query{Kind: KindKNN, Point: q, K: k}
	var pts []geom.Point
	err := m.run(m.stats.Choose(kq), kq, func(eng rsmi.Engine) error {
		var err error
		pts, err = eng.KNNContext(ctx, q, k)
		return err
	})
	return pts, err
}

func (m *MultiEngine) ExactKNNContext(ctx context.Context, q geom.Point, k int) ([]geom.Point, error) {
	kq := Query{Kind: KindKNN, Point: q, K: k}
	var pts []geom.Point
	err := m.run(m.stats.Choose(kq), kq, func(eng rsmi.Engine) error {
		var err error
		pts, err = eng.ExactKNNContext(ctx, q, k)
		return err
	})
	return pts, err
}

// BatchPointQueryContext routes the whole batch at once: point probes
// cost the same everywhere in a backend, so one plan covers all.
func (m *MultiEngine) BatchPointQueryContext(ctx context.Context, qs []geom.Point) ([]bool, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	pq := Query{Kind: KindPoint, Point: qs[0]}
	pl := m.stats.Choose(pq)
	start := time.Now()
	out, err := m.engine(pl.Backend).BatchPointQueryContext(ctx, qs)
	if err != nil {
		return nil, err
	}
	m.stats.ObserveN(pl, pq, usSince(start)/float64(len(qs)), len(qs))
	return out, nil
}

// BatchWindowQueryContext plans each window individually (their
// selectivities differ), groups the batch by chosen backend, and
// scatters the per-group answers back into request order. The common
// case — every window picks the same backend — skips the group-and-
// scatter machinery entirely, keeping the planner's per-batch overhead
// to the plan computations themselves.
func (m *MultiEngine) BatchWindowQueryContext(ctx context.Context, qs []geom.Rect) ([][]geom.Point, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	plans := make([]Plan, len(qs))
	meanEst := 0.0
	uniform := true
	for i, q := range qs {
		plans[i] = m.stats.Choose(Query{Kind: KindWindow, Window: q})
		meanEst += plans[i].EstCostUS
		if plans[i].Backend != plans[0].Backend {
			uniform = false
		}
	}
	if uniform {
		start := time.Now()
		rs, err := m.engine(plans[0].Backend).BatchWindowQueryContext(ctx, qs)
		if err != nil {
			return nil, err
		}
		m.stats.ObserveN(Plan{Backend: plans[0].Backend, EstCostUS: meanEst / float64(len(qs))},
			Query{Kind: KindWindow}, usSince(start)/float64(len(qs)), len(qs))
		return rs, nil
	}
	groups := map[string][]int{}
	for i := range plans {
		groups[plans[i].Backend] = append(groups[plans[i].Backend], i)
	}
	out := make([][]geom.Point, len(qs))
	for name, idxs := range groups {
		sub := make([]geom.Rect, len(idxs))
		for j, ix := range idxs {
			sub[j] = qs[ix]
		}
		start := time.Now()
		rs, err := m.engine(name).BatchWindowQueryContext(ctx, sub)
		if err != nil {
			return nil, err
		}
		perQuery := usSince(start) / float64(len(idxs))
		meanEst := 0.0
		for j, ix := range idxs {
			out[ix] = rs[j]
			meanEst += plans[ix].EstCostUS
		}
		meanEst /= float64(len(idxs))
		m.stats.ObserveN(Plan{Backend: name, EstCostUS: meanEst},
			Query{Kind: KindWindow}, perQuery, len(idxs))
	}
	return out, nil
}

// BatchKNNContext groups by chosen backend exactly like window batches
// (plans differ by k), with the same uniform-batch fast path.
func (m *MultiEngine) BatchKNNContext(ctx context.Context, qs []shard.KNNQuery) ([][]geom.Point, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	plans := make([]Plan, len(qs))
	meanEst := 0.0
	uniform := true
	for i, q := range qs {
		plans[i] = m.stats.Choose(Query{Kind: KindKNN, Point: q.Q, K: q.K})
		meanEst += plans[i].EstCostUS
		if plans[i].Backend != plans[0].Backend {
			uniform = false
		}
	}
	if uniform {
		start := time.Now()
		rs, err := m.engine(plans[0].Backend).BatchKNNContext(ctx, qs)
		if err != nil {
			return nil, err
		}
		m.stats.ObserveN(Plan{Backend: plans[0].Backend, EstCostUS: meanEst / float64(len(qs))},
			Query{Kind: KindKNN}, usSince(start)/float64(len(qs)), len(qs))
		return rs, nil
	}
	groups := map[string][]int{}
	for i := range plans {
		groups[plans[i].Backend] = append(groups[plans[i].Backend], i)
	}
	out := make([][]geom.Point, len(qs))
	for name, idxs := range groups {
		sub := make([]shard.KNNQuery, len(idxs))
		for j, ix := range idxs {
			sub[j] = qs[ix]
		}
		start := time.Now()
		rs, err := m.engine(name).BatchKNNContext(ctx, sub)
		if err != nil {
			return nil, err
		}
		perQuery := usSince(start) / float64(len(idxs))
		meanEst := 0.0
		for j, ix := range idxs {
			out[ix] = rs[j]
			meanEst += plans[ix].EstCostUS
		}
		meanEst /= float64(len(idxs))
		m.stats.ObserveN(Plan{Backend: name, EstCostUS: meanEst},
			Query{Kind: KindKNN}, perQuery, len(idxs))
	}
	return out, nil
}

// InsertContext applies the write to every backend, so reads keep
// answering identically regardless of routing. An error part-way
// through aborts (a cancelled context mid-write can leave backends
// diverged; the serving layer treats that as fatal for the request and
// the next rebuild reconverges them).
func (m *MultiEngine) InsertContext(ctx context.Context, p geom.Point) error {
	for _, b := range m.backends {
		if err := b.InsertContext(ctx, p); err != nil {
			return err
		}
	}
	return nil
}

// DeleteContext applies the delete everywhere; the primary's answer is
// the authoritative "was it present".
func (m *MultiEngine) DeleteContext(ctx context.Context, p geom.Point) (bool, error) {
	deleted, err := m.backends[0].DeleteContext(ctx, p)
	if err != nil {
		return false, err
	}
	for _, b := range m.backends[1:] {
		if _, err := b.DeleteContext(ctx, p); err != nil {
			return false, err
		}
	}
	return deleted, nil
}

// RebuildContext rebuilds every backend (a no-op on baselines).
func (m *MultiEngine) RebuildContext(ctx context.Context) error {
	for _, b := range m.backends {
		if err := b.RebuildContext(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Len reports the primary's point count (backends hold the same set).
func (m *MultiEngine) Len() int { return m.backends[0].Len() }

// Stats reports the primary's structure under the planner's name, with
// the footprint summed across all backends — the honest cost of
// holding every index at once.
func (m *MultiEngine) Stats() rsmi.Stats {
	st := m.backends[0].Stats()
	st.Name = m.Name()
	st.SizeBytes = 0
	for _, b := range m.backends {
		st.SizeBytes += b.Stats().SizeBytes
	}
	return st
}

// Accesses sums block accesses across backends; ResetAccesses resets
// them all.
func (m *MultiEngine) Accesses() int64 {
	var sum int64
	for _, b := range m.backends {
		sum += b.Accesses()
	}
	return sum
}

func (m *MultiEngine) ResetAccesses() {
	for _, b := range m.backends {
		b.ResetAccesses()
	}
}
