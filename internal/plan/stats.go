package plan

// The statistics layer: a selectivity estimator over the rank-space CDF
// (internal/cdf — the same piecewise-linear model family the RSMI
// learns) and per-backend cost models fitted from startup micro-probes,
// corrected online by an EWMA of observed-vs-estimated cost ratios.

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rsmi"
	"rsmi/internal/cdf"
	"rsmi/internal/geom"
	"rsmi/internal/shard"
)

// Model is one backend's fitted cost model: constant point cost, and
// affine window/kNN costs in estimated rows and k respectively. All
// coefficients are microseconds.
type Model struct {
	PointUS        float64
	WindowBaseUS   float64
	WindowPerRowUS float64
	KNNBaseUS      float64
	KNNPerKUS      float64
}

// model is the live per-backend state: the fitted coefficients plus the
// online EWMA correction factor per query kind and the routing counter.
// The coefficients are immutable after calibration; the corrections and
// counters are atomics, so planning and observing never lock.
type model struct {
	Model
	adj    [3]atomicFloat // per Kind: EWMA of actual/estimated
	routed atomic.Int64
}

// atomicFloat is a float64 with atomic load/store (bit-cast through
// uint64), for the lock-free correction factors.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) load() float64   { return math.Float64frombits(a.bits.Load()) }
func (a *atomicFloat) store(v float64) { a.bits.Store(math.Float64bits(v)) }

// Correction factor bounds, EWMA weight, and mean-reversion. The
// corrections are deliberately a trim knob, not a steering wheel: the
// [0.5, 2] clamp lets persistent signal re-rank backends whose models
// sit within ~4× of each other (where calibration noise actually
// matters) but can never route across a larger model gap. Observations
// are wall-clock on a shared machine — only the routed backend is ever
// observed, so an unbounded correction lets load swings walk the
// incumbent's estimate past every other backend in turn, round-robining
// traffic through backends the models correctly price as several times
// worse. Gross regime change (an index degrading under churn, a
// dataset swap) is recalibration's job: Calibrate publishes new models
// through a copy-on-write snapshot and is safe to re-run while serving.
// Every update also pulls the correction slightly back toward 1
// (log-domain AR(1) with φ = 1−adjReversion) so noise-driven drift
// decays instead of accumulating.
const (
	adjAlpha     = 0.1
	adjReversion = 0.02
	adjMin       = 0.5
	adjMax       = 2
)

// Mispredict thresholds: an observation counts as a misprediction when
// the actual cost lands outside [est/2, 2·est].
const mispredictFactor = 2

// ratioCap winsorizes a single observation's actual/estimated ratio
// before it enters the EWMA (see ObserveN).
const ratioCap = 8.0

// coalesceRowLimit is the estimated-cardinality ceiling under which a
// window query is cheap enough that coalescing (micro-batching with
// concurrent traffic) is expected to win over a direct engine call.
const coalesceRowLimit = 256

// modelSet is the read-mostly model registry snapshot: the hot path
// (Choose, Observe — called per query) loads it with one atomic read,
// and calibration publishes updates by swapping the pointer.
type modelSet struct {
	order  []string
	models map[string]*model
}

// Stats is the planner's statistics store: the data-distribution CDFs
// the selectivity estimator evaluates, and one calibrated cost model
// per backend. Calibrate populates it at startup; Choose and Observe
// are safe for concurrent use at any point (an uncalibrated Stats
// plans empty fallback plans).
type Stats struct {
	n      int
	fx, fy *cdf.PMF
	span   geom.Rect
	sample []geom.Point

	mu  sync.Mutex // serialises setModel (snapshot copy-on-write)
	set atomic.Pointer[modelSet]

	planned     atomic.Int64
	observed    atomic.Int64
	mispredicts atomic.Int64
}

// NewStats builds the statistics store over the served point set: two
// marginal rank-space CDFs (x and y) for selectivity estimation and a
// deterministic probe sample for calibration.
func NewStats(pts []geom.Point) *Stats {
	s := &Stats{
		n:    len(pts),
		span: geom.EmptyRect(),
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.Y
		s.span = s.span.Union(geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
	}
	s.fx = cdf.New(xs, cdf.DefaultGamma)
	s.fy = cdf.New(ys, cdf.DefaultGamma)
	// A strided sample keeps calibration probes spread over the data
	// distribution without holding the full set.
	const sampleCap = 1024
	stride := len(pts)/sampleCap + 1
	for i := 0; i < len(pts); i += stride {
		s.sample = append(s.sample, pts[i])
	}
	return s
}

// NewStatsFromModels builds a Stats with explicitly seeded cost models
// over a nominally uniform unit-square distribution of n points — the
// deterministic constructor planner tests use instead of wall-clock
// calibration.
func NewStatsFromModels(n int, models map[string]Model) *Stats {
	s := &Stats{
		n:    n,
		fx:   cdf.New([]float64{0, 1}, cdf.DefaultGamma),
		fy:   cdf.New([]float64{0, 1}, cdf.DefaultGamma),
		span: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
	}
	names := make([]string, 0, len(models))
	for name := range models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.setModel(name, models[name])
	}
	return s
}

// setModel publishes a (re)calibrated model copy-on-write: concurrent
// planners keep reading the old snapshot until the swap, so calibration
// never blocks the hot path. A recalibrated backend keeps its routing
// counter but has its corrections reset to 1.
func (s *Stats) setModel(name string, m Model) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.set.Load()
	next := &modelSet{models: map[string]*model{}}
	if old != nil {
		next.order = append(next.order, old.order...)
		for k, v := range old.models {
			next.models[k] = v
		}
	}
	lm := &model{Model: m}
	for k := range lm.adj {
		lm.adj[k].store(1)
	}
	if prev, ok := next.models[name]; ok {
		lm.routed.Store(prev.routed.Load())
	} else {
		next.order = append(next.order, name)
	}
	next.models[name] = lm
	s.set.Store(next)
}

// Model returns the fitted (uncorrected) cost model for a backend and
// whether one exists.
func (s *Stats) Model(name string) (Model, bool) {
	set := s.set.Load()
	if set == nil {
		return Model{}, false
	}
	m, ok := set.models[name]
	if !ok {
		return Model{}, false
	}
	return m.Model, true
}

// Backends lists the calibrated backends in registration order.
func (s *Stats) Backends() []string {
	set := s.set.Load()
	if set == nil {
		return nil
	}
	return append([]string(nil), set.order...)
}

// Selectivity estimates the fraction of the point set inside r as the
// product of the marginal CDF masses — exact for independent x/y,
// approximate otherwise, and always cheap (two PMF evaluations).
func (s *Stats) Selectivity(r geom.Rect) float64 {
	if r.IsEmpty() || s.n == 0 {
		return 0
	}
	sx := s.fx.Eval(r.MaxX) - s.fx.Eval(r.MinX)
	sy := s.fy.Eval(r.MaxY) - s.fy.Eval(r.MinY)
	if sx < 0 {
		sx = 0
	}
	if sy < 0 {
		sy = 0
	}
	return sx * sy
}

// EstRows estimates the result cardinality of a window query over r.
func (s *Stats) EstRows(r geom.Rect) float64 {
	return float64(s.n) * s.Selectivity(r)
}

// estimate returns the corrected cost estimate (µs) of q on m given the
// pre-computed estimated row count (windows only — callers hoist the
// selectivity evaluation out of the per-backend loop).
func estimate(m *model, q Query, rows float64) float64 {
	var costUS float64
	switch q.Kind {
	case KindPoint:
		costUS = m.PointUS
	case KindWindow:
		costUS = m.WindowBaseUS + m.WindowPerRowUS*rows
	case KindKNN:
		costUS = m.KNNBaseUS + m.KNNPerKUS*float64(q.K)
	}
	return costUS * m.adj[q.Kind].load()
}

// Choose plans q: the backend with the lowest corrected cost estimate,
// plus the batching and coalescing hints its cost class implies. With
// no calibrated models the plan is empty (callers fall back to their
// primary backend).
func (s *Stats) Choose(q Query) Plan { return s.choose(q, true) }

// Hint plans q without recording it: the same backend choice and
// batching advice Choose would produce, for callers that only want the
// coalescing hint (the serving tier's single-query read paths) and must
// not inflate the planned/routed counters with queries the planner is
// not routing.
func (s *Stats) Hint(q Query) Plan { return s.choose(q, false) }

func (s *Stats) choose(q Query, record bool) Plan {
	if record {
		s.planned.Add(1)
	}
	set := s.set.Load()
	if set == nil {
		return Plan{Batch: 1}
	}
	var rows float64
	if q.Kind == KindWindow {
		rows = s.EstRows(q.Window)
	}
	var (
		best     *model
		pl       Plan
		bestCost = math.Inf(1)
	)
	for _, name := range set.order {
		m := set.models[name]
		cost := estimate(m, q, rows)
		if cost < bestCost {
			best, bestCost = m, cost
			pl = Plan{Backend: name, EstCostUS: cost, EstRows: rows}
		}
	}
	if best == nil {
		return Plan{Batch: 1}
	}
	if record {
		best.routed.Add(1)
	}
	// Cheap queries amortise well in large micro-batches; expensive
	// scans should run directly, one at a time.
	switch {
	case q.Kind != KindWindow || pl.EstRows <= coalesceRowLimit:
		pl.Coalesce = true
		pl.Batch = 32
	case pl.EstRows <= 16*coalesceRowLimit:
		pl.Batch = 8
	default:
		pl.Batch = 1
	}
	return pl
}

// obsBatchRef is the group size at which an observation gets the full
// EWMA weight; smaller groups get proportionally less (see ObserveN).
const obsBatchRef = 32

// Observe feeds one measured cost observation for a single executed
// query back into the model that planned it. See ObserveN.
func (s *Stats) Observe(pl Plan, q Query, actualUS float64) {
	s.ObserveN(pl, q, actualUS, 1)
}

// ObserveN feeds one measured cost observation covering a group of n
// queries planned alike (pl.EstCostUS the group's mean estimate,
// actualUS the group's mean per-query cost): the backend's per-kind
// correction factor moves toward the observed actual/estimated ratio,
// and estimates off by more than 2× either way count as mispredictions.
//
// The EWMA weight scales with n (full weight at obsBatchRef): the
// group's wall-clock includes whatever the scheduler interleaved, a
// fixed-size noise term that mean-per-query division spreads over n —
// so a 2-query group's ratio can read 10× high off one preemption while
// a full batch barely notices. Weighting by size keeps those splinter
// groups (exactly what routing produces while backends are near-tied)
// from blowing up the corrections, while persistent signal still
// accumulates at any group size.
func (s *Stats) ObserveN(pl Plan, q Query, actualUS float64, n int) {
	if pl.Backend == "" || pl.EstCostUS <= 0 || actualUS <= 0 || n <= 0 {
		return
	}
	set := s.set.Load()
	if set == nil {
		return
	}
	m := set.models[pl.Backend]
	if m == nil {
		return
	}
	s.observed.Add(1)
	ratio := actualUS / pl.EstCostUS
	if ratio > mispredictFactor || ratio < 1/float64(mispredictFactor) {
		s.mispredicts.Add(1)
	}
	// Winsorize the ratio before it reaches the EWMA: on a contended
	// machine a batch that absorbs a whole preemption quantum reports a
	// cost 10–100× its CPU share, and a handful of such spikes would pin
	// the correction at its clamp even when the typical observation sits
	// near 1. Capping each observation's influence keeps the EWMA
	// tracking the typical ratio rather than the tail.
	if ratio > ratioCap {
		ratio = ratioCap
	} else if ratio < 1/ratioCap {
		ratio = 1 / ratioCap
	}
	alpha := adjAlpha
	if n < obsBatchRef {
		alpha = adjAlpha * float64(n) / obsBatchRef
	}
	adj := &m.adj[q.Kind]
	next := adj.load() * ((1 - alpha) + alpha*ratio)
	next = math.Pow(next, 1-adjReversion)
	if next < adjMin {
		next = adjMin
	} else if next > adjMax {
		next = adjMax
	}
	adj.store(next)
}

// Counters is a snapshot of the planner's routing and misprediction
// counters, for /metrics and /v1/stats.
type Counters struct {
	// Planned counts every planned query. Observed counts cost
	// observations fed back (one per executed query or batch group);
	// Mispredicts those observations whose actual cost landed outside
	// [est/2, 2·est].
	Planned     int64
	Observed    int64
	Mispredicts int64
	// Routed counts planned queries per chosen backend.
	Routed map[string]int64
}

// Counters snapshots the planner counters.
func (s *Stats) Counters() Counters {
	c := Counters{
		Planned:     s.planned.Load(),
		Observed:    s.observed.Load(),
		Mispredicts: s.mispredicts.Load(),
		Routed:      map[string]int64{},
	}
	if set := s.set.Load(); set != nil {
		for name, m := range set.models {
			c.Routed[name] = m.routed.Load()
		}
	}
	return c
}

// Calibration grid: window probe selectivities, kNN probe ks, and the
// probe centre / repetition counts. The grid is small on purpose — a
// full calibration of one backend costs tens of milliseconds.
var (
	calWindowFracs = []float64{1e-4, 1e-3, 1e-2, 5e-2}
	calKNNKs       = []int{1, 10, 100}
)

const (
	calCenters = 16
	// calPointCenters is the (larger) probe batch for point queries.
	// A point lookup costs fractions of a microsecond on the cheap
	// backends, far below the fixed cost of one batch call; probing
	// them at the window/kNN batch size lets that per-call cost swamp
	// the per-query signal and scramble the backend ordering. A few
	// hundred probes per call push the per-call term below the noise
	// floor. Capped by the stride sample size (1024).
	calPointCenters = 256
	// calProbeDur is the floor measurement window per probe grid cell:
	// duration-based probing makes the fitted coefficients repeatable
	// where a fixed repetition count would hand the cheap probes — the
	// ones routing decisions hinge on — only a few microseconds of
	// signal. Cells whose calls are expensive get a longer window (see
	// probeDur): a large-k kNN batch can cost milliseconds per call, and
	// a floor-sized window would fit only a handful of calls, making the
	// fitted ordering a coin flip between closely-priced backends.
	calProbeDur = 8 * time.Millisecond
	// calProbeMinCalls is the number of timed calls a cell's window is
	// sized to fit (across all workers) when one call costs more than
	// the floor window can accommodate.
	calProbeMinCalls = 24
	// calProbeMaxDur caps one cell's window so a pathologically slow
	// backend cannot stretch startup calibration unboundedly.
	calProbeMaxDur = 120 * time.Millisecond
	// calWorkers is how many goroutines drive each probe batch at once —
	// deliberately a stand-in for serving concurrency, NOT capped at
	// GOMAXPROCS. Probing under the same contention the server runs
	// under keeps estimates and runtime observations in comparable
	// units, and prices engines that parallelise one query internally
	// at the cores they spend, which an idle-machine probe would hide.
	calWorkers = 4
)

// probeDur sizes one grid cell's measurement window from the measured
// cost of a single probe call: the floor window for cheap cells, scaled
// up so calProbeMinCalls timed calls fit across the workers for
// expensive ones, capped at calProbeMaxDur. Scaling with per-call cost
// gives every cell comparable statistical weight — under fixed windows
// the expensive cells (large-k kNN, wide windows) got a handful of
// calls while the cheap ones got thousands.
func probeDur(warm time.Duration) time.Duration {
	d := warm * calProbeMinCalls / calWorkers
	if d < calProbeDur {
		return calProbeDur
	}
	if d > calProbeMaxDur {
		return calProbeMaxDur
	}
	return d
}

// runProbes drives one batch probe repeatedly from calWorkers
// goroutines for a window scaled to the probe's per-call cost (see
// probeDur) and returns the mean cost of one query in CPU-µs
// (workers × wall / queries) and the mean per-query result count.
// Probes go through the batch call because that is how the serving
// tier issues queries — batch execution amortises per-call setup, and
// for the tree baselines that is several times cheaper per query than
// the single-query path a sequential probe would measure.
func runProbes(batchSize int, probe func() (int, error)) (usPerQuery, rowsPerQuery float64, err error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		queries  int
		rows     int
		firstErr error
	)
	// One untimed warm-up call so the first timed probe doesn't pay
	// cold-cache cost — the smallest probes run first and are exactly
	// the ones a constant error term distorts most. Timing it also
	// prices the cell: the warm-up's duration sizes the window.
	warmStart := time.Now()
	if _, err := probe(); err != nil {
		return 0, 0, err
	}
	dur := probeDur(time.Since(warmStart))
	start := time.Now()
	deadline := start.Add(dur)
	for w := 0; w < calWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n, r := 0, 0
			for ok := true; ok; ok = time.Now().Before(deadline) {
				k, err := probe()
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				n += batchSize
				r += k
				// Yield between probe calls: small CPU-bound calls
				// otherwise run back-to-back inside one scheduler
				// quantum, so the "concurrent" workers serialise in
				// ~10ms slices and the wall clock measures an
				// arbitrary mix instead of fair interleaving. The
				// yield is a constant per-call cost shared by every
				// backend, amortised over the batch.
				runtime.Gosched()
			}
			mu.Lock()
			queries += n
			rows += r
			mu.Unlock()
		}()
	}
	wg.Wait()
	wall := usSince(start)
	if firstErr != nil {
		return 0, 0, firstErr
	}
	return wall * calWorkers / float64(queries), float64(rows) / float64(queries), nil
}

// Calibrate fits eng's cost model from a micro-probe grid: point probes
// at sampled data points, windows across calWindowFracs selectivities
// (cost fitted against *actual* returned rows, which also exercises the
// estimator's domain), and kNN across calKNNKs. Probes run concurrently
// through the batch query paths (see calWorkers and runProbes) so the
// fitted coefficients are per-query CPU cost under serving-shaped load.
// It stores the model under eng.Name() and resets its corrections to 1.
func (s *Stats) Calibrate(ctx context.Context, eng rsmi.Engine) error {
	if len(s.sample) == 0 {
		return fmt.Errorf("plan: calibrate %s: no sample points (build Stats with NewStats)", eng.Name())
	}
	pick := func(max int) []geom.Point {
		centers := s.sample
		if len(centers) <= max {
			return centers
		}
		stride := len(centers) / max
		picked := make([]geom.Point, 0, max)
		for i := 0; i < len(centers) && len(picked) < max; i += stride {
			picked = append(picked, centers[i])
		}
		return picked
	}
	centers := pick(calCenters)
	spanW := s.span.MaxX - s.span.MinX
	spanH := s.span.MaxY - s.span.MinY
	if spanW <= 0 || spanH <= 0 {
		spanW, spanH = 1, 1
	}
	// Half the point probes are scrambled off the data points into
	// (almost surely) misses: served point probes are drawn from the
	// whole data space, and a miss costs very differently per backend —
	// a tree must visit every subtree whose box covers the point to
	// prove absence, while a grid cell simply comes up empty. Probing
	// only resident points would price the hit path and route the
	// misses wrong. The scramble is a deterministic golden-ratio hop, so
	// calibration stays reproducible for a given point set.
	pointCenters := append([]geom.Point(nil), pick(calPointCenters)...)
	const phi = 0.6180339887498949
	for i := 1; i < len(pointCenters); i += 2 {
		u := math.Mod((pointCenters[i].X-s.span.MinX)/spanW+float64(i)*phi, 1)
		v := math.Mod((pointCenters[i].Y-s.span.MinY)/spanH+float64(i+1)*phi, 1)
		pointCenters[i] = geom.Pt(s.span.MinX+u*spanW, s.span.MinY+v*spanH)
	}
	var m Model

	// Point probes: constant model, mean over the grid.
	us, _, err := runProbes(len(pointCenters), func() (int, error) {
		_, err := eng.BatchPointQueryContext(ctx, pointCenters)
		return 0, err
	})
	if err != nil {
		return fmt.Errorf("plan: calibrate %s: %w", eng.Name(), err)
	}
	m.PointUS = us

	// Window probes: one (mean rows, mean µs) sample per selectivity,
	// then a least-squares line through them.
	var rowsXs, usYs []float64
	for _, frac := range calWindowFracs {
		side := math.Sqrt(frac)
		rects := make([]geom.Rect, len(centers))
		for i, c := range centers {
			rects[i] = geom.RectAround(c, side*spanW, side*spanH)
		}
		us, rows, err := runProbes(len(rects), func() (int, error) {
			rs, err := eng.BatchWindowQueryContext(ctx, rects)
			if err != nil {
				return 0, err
			}
			total := 0
			for _, r := range rs {
				total += len(r)
			}
			return total, nil
		})
		if err != nil {
			return fmt.Errorf("plan: calibrate %s: %w", eng.Name(), err)
		}
		rowsXs = append(rowsXs, rows)
		usYs = append(usYs, us)
	}
	m.WindowBaseUS, m.WindowPerRowUS = fitLinear(rowsXs, usYs)

	// kNN probes: one sample per k, same fit.
	var kXs, kUs []float64
	for _, k := range calKNNKs {
		qs := make([]shard.KNNQuery, len(centers))
		for i, c := range centers {
			qs[i] = shard.KNNQuery{Q: c, K: k}
		}
		us, _, err := runProbes(len(qs), func() (int, error) {
			_, err := eng.BatchKNNContext(ctx, qs)
			return 0, err
		})
		if err != nil {
			return fmt.Errorf("plan: calibrate %s: %w", eng.Name(), err)
		}
		kXs = append(kXs, float64(k))
		kUs = append(kUs, us)
	}
	m.KNNBaseUS, m.KNNPerKUS = fitLinear(kXs, kUs)

	s.setModel(eng.Name(), m)
	return nil
}

func usSince(t time.Time) float64 {
	return float64(time.Since(t).Nanoseconds()) / 1e3
}

// fitLinear least-squares-fits y = base + slope·x under relative error
// (weights 1/y²), clamping to the physically meaningful region
// (non-negative slope, positive base). The probe grid spans three
// decades of cost; an absolute-error fit would be dominated by the
// largest probes and misprice the cheap ones — where backends differ
// most and nearly all routing decisions happen.
func fitLinear(xs, ys []float64) (base, slope float64) {
	if len(xs) == 0 {
		return 1, 0
	}
	var sumW, sumWX, sumWY, sumWXY, sumWXX float64
	for i := range xs {
		y := ys[i]
		if y < 0.05 {
			y = 0.05
		}
		w := 1 / (y * y)
		sumW += w
		sumWX += w * xs[i]
		sumWY += w * ys[i]
		sumWXY += w * xs[i] * ys[i]
		sumWXX += w * xs[i] * xs[i]
	}
	meanX, meanY := sumWX/sumW, sumWY/sumW
	cov := sumWXY - sumW*meanX*meanY
	varX := sumWXX - sumW*meanX*meanX
	if varX > 0 {
		slope = cov / varX
	}
	if slope < 0 {
		slope = 0
	}
	base = meanY - slope*meanX
	if base < 0.05 {
		base = 0.05
	}
	return base, slope
}
