package plan

// MultiEngine correctness: whatever the router decides, the answers
// must be byte-identical to a fixed backend's — routing is a cost
// decision, never a semantics decision. Models are seeded (no
// wall-clock calibration), so these tests are deterministic.

import (
	"context"
	"testing"

	"rsmi"
	"rsmi/internal/dataset"
	"rsmi/internal/geom"
	"rsmi/internal/shard"
)

// testMulti builds a MultiEngine over the R*-tree and Grid File
// baselines with seeded models that send tiny windows to the R*-tree
// and large ones to the Grid File, so batch tests exercise the
// group-and-scatter path across both backends.
func testMulti(t *testing.T) (*MultiEngine, []geom.Point, rsmi.Engine) {
	t.Helper()
	pts := dataset.Generate(dataset.Skewed, 3000, 7)
	ref := rsmi.NewRStarEngine(pts, 0)
	grid := rsmi.NewGridFileEngine(pts, 0)
	stats := NewStatsFromModels(len(pts), map[string]Model{
		ref.Name():  {PointUS: 1, WindowBaseUS: 1, WindowPerRowUS: 1, KNNBaseUS: 10, KNNPerKUS: 1},
		grid.Name(): {PointUS: 2, WindowBaseUS: 50, WindowPerRowUS: 0.01, KNNBaseUS: 5, KNNPerKUS: 1},
	})
	// Rebuild the estimator over the real point set so window plans
	// split between the two backends by selectivity.
	real := NewStats(pts)
	real.mu.Lock()
	real.set.Store(stats.set.Load())
	real.mu.Unlock()
	me, err := NewMultiEngine(real, ref, grid)
	if err != nil {
		t.Fatal(err)
	}
	return me, pts, ref
}

func TestMultiEngineBatchWindowMatchesFixed(t *testing.T) {
	me, pts, ref := testMulti(t)
	ctx := context.Background()
	// A mix of tiny and huge windows, so the batch genuinely splits
	// across backends and the scatter must restore request order.
	var qs []geom.Rect
	for i := 0; i < 16; i++ {
		c := pts[(i*197)%len(pts)]
		side := 0.004
		if i%3 == 0 {
			side = 0.4
		}
		qs = append(qs, geom.RectAround(c, side, side))
	}
	got, err := me.BatchWindowQueryContext(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.BatchWindowQueryContext(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		assertSamePoints(t, i, got[i], want[i])
	}
	c := me.PlannerStats()
	if len(c.Routed) < 2 {
		t.Fatalf("batch did not split across backends: routed=%v", c.Routed)
	}
}

func TestMultiEngineBatchKNNAndPointMatchFixed(t *testing.T) {
	me, pts, ref := testMulti(t)
	ctx := context.Background()
	var kqs []shard.KNNQuery
	var pqs []geom.Point
	for i := 0; i < 12; i++ {
		kqs = append(kqs, shard.KNNQuery{Q: pts[(i*311)%len(pts)], K: 1 + i%5})
		pqs = append(pqs, pts[(i*113)%len(pts)], geom.Pt(float64(i)*0.07, 0.5))
	}
	gotK, err := me.BatchKNNContext(ctx, kqs)
	if err != nil {
		t.Fatal(err)
	}
	wantK, err := ref.BatchKNNContext(ctx, kqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantK {
		if len(gotK[i]) != len(wantK[i]) {
			t.Fatalf("kNN %d: got %d points, want %d", i, len(gotK[i]), len(wantK[i]))
		}
	}
	gotP, err := me.BatchPointQueryContext(ctx, pqs)
	if err != nil {
		t.Fatal(err)
	}
	wantP, err := ref.BatchPointQueryContext(ctx, pqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantP {
		if gotP[i] != wantP[i] {
			t.Fatalf("point %d: got %v, want %v", i, gotP[i], wantP[i])
		}
	}
}

func TestMultiEngineWritesReachEveryBackend(t *testing.T) {
	me, _, _ := testMulti(t)
	ctx := context.Background()
	p := geom.Pt(0.123456, 0.654321)
	if err := me.InsertContext(ctx, p); err != nil {
		t.Fatal(err)
	}
	for _, b := range me.backends {
		found, err := b.PointQueryContext(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("insert did not reach backend %s", b.Name())
		}
	}
	deleted, err := me.DeleteContext(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if !deleted {
		t.Fatal("delete reported not-present for a point just inserted")
	}
	for _, b := range me.backends {
		found, err := b.PointQueryContext(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if found {
			t.Fatalf("delete did not reach backend %s", b.Name())
		}
	}
}

// assertSamePoints compares two window results as sets (backends may
// order results differently).
func assertSamePoints(t *testing.T, i int, got, want []geom.Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("window %d: got %d points, want %d", i, len(got), len(want))
	}
	seen := make(map[geom.Point]int, len(want))
	for _, p := range want {
		seen[p]++
	}
	for _, p := range got {
		if seen[p] == 0 {
			t.Fatalf("window %d: unexpected point %+v", i, p)
		}
		seen[p]--
	}
}
