package plan

// The measured price of routing: Choose on the hot path, and a full
// planner batch against calling the fixed backend directly. The
// EXPERIMENTS.md planner table cites these when attributing the
// tiny-window gap to per-query routing overhead.

import (
	"context"
	"testing"

	"rsmi"
	"rsmi/internal/dataset"
	"rsmi/internal/geom"
)

func BenchmarkChooseWindow(b *testing.B) {
	pts := dataset.Generate(dataset.Skewed, 20000, 1)
	st := NewStats(pts)
	st.mu.Lock()
	st.set.Store(NewStatsFromModels(len(pts), map[string]Model{
		"A": {PointUS: 1, WindowBaseUS: 5, WindowPerRowUS: 0.1, KNNBaseUS: 10, KNNPerKUS: 1},
		"B": {PointUS: 2, WindowBaseUS: 2, WindowPerRowUS: 0.5, KNNBaseUS: 5, KNNPerKUS: 2},
	}).set.Load())
	st.mu.Unlock()
	q := Query{Kind: KindWindow, Window: geom.RectAround(pts[0], 0.01, 0.01)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = st.Choose(q)
	}
}

// BenchmarkBatchWindowOverhead compares a 32-query uniform batch through
// the planner (plan + route + observe) against the same backend called
// directly; the per-query delta is the routing overhead the planner
// experiment's tiny-window cells pay.
func BenchmarkBatchWindowOverhead(b *testing.B) {
	pts := dataset.Generate(dataset.Skewed, 20000, 1)
	ref := rsmi.NewRStarEngine(pts, 0)
	st := NewStats(pts)
	st.mu.Lock()
	st.set.Store(NewStatsFromModels(len(pts), map[string]Model{
		ref.Name(): {PointUS: 1, WindowBaseUS: 5, WindowPerRowUS: 0.1, KNNBaseUS: 10, KNNPerKUS: 1},
	}).set.Load())
	st.mu.Unlock()
	me, err := NewMultiEngine(st, ref)
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]geom.Rect, 32)
	for i := range qs {
		qs[i] = geom.RectAround(pts[(i*131)%len(pts)], 0.004, 0.004)
	}
	ctx := context.Background()
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ref.BatchWindowQueryContext(ctx, qs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("planner", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := me.BatchWindowQueryContext(ctx, qs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
