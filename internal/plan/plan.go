// Package plan is the cost-based query planner above the multi-backend
// rsmi.Engine surface. PR 5's measured finding — baselines out-serve
// RSMI 2.6–3.9× on batched window wall-clock while RSMI wins on block
// accesses — means no fixed backend choice is right for every query;
// "The Case for Learned Spatial Indexes" and "Evaluating Learned
// Spatial Indexes" (PAPERS.md) show the crossover is workload-dependent.
// This package makes the choice per query:
//
//   - Stats holds per-backend cost models calibrated from micro-probes
//     at startup (Calibrate runs a small query grid and fits
//     cost = f(selectivity, k)), refreshed online from observed per-op
//     latencies, plus a selectivity estimator over the rank-space CDF
//     (internal/cdf — the same piecewise-linear model family RSMI itself
//     learns).
//   - A Query (point / window / kNN, optional distance ordering and
//     LIMIT) is planned into a Plan{Backend, Batch, Coalesce, EstCost}
//     and executed; estimated vs actual cost rides the EXPLAIN trace so
//     mispredictions are observable.
//   - MultiEngine implements the full rsmi.Engine over several backends
//     sharing one logical point set, routing every query through the
//     planner — the engine `rsmi-serve -planner` serves.
//
// internal/sqlfe parses the spatial SQL dialect into Query values.
package plan

import (
	"context"
	"fmt"
	"time"

	"rsmi"
	"rsmi/internal/geom"
	"rsmi/internal/index"
)

// Kind is the shape of a planned query.
type Kind uint8

const (
	// KindPoint is an exact-match probe: does the point exist?
	KindPoint Kind = iota
	// KindWindow is a range query over an axis-aligned rectangle,
	// optionally distance-ordered and LIMIT-truncated.
	KindWindow
	// KindKNN is a k-nearest-neighbour query around Point.
	KindKNN
)

// String names the kind as it appears in plans and traces.
func (k Kind) String() string {
	switch k {
	case KindPoint:
		return "point"
	case KindWindow:
		return "window"
	case KindKNN:
		return "knn"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Query is one planner-level query: the logical operation the SQL
// front-end (internal/sqlfe) or a caller hands the planner, independent
// of which backend executes it.
type Query struct {
	Kind Kind
	// Point is the probe point (KindPoint), the kNN centre (KindKNN), or
	// the ORDER BY ST_Distance centre of a distance-ordered window.
	Point geom.Point
	// Window is the query rectangle (KindWindow only).
	Window geom.Rect
	// K is the neighbour count (KindKNN only).
	K int
	// Limit truncates the result to at most Limit points when > 0
	// (KindWindow only; a kNN's limit is K).
	Limit int
	// OrderByDistance sorts a window's result by ascending distance to
	// Point before Limit applies (KindWindow only).
	OrderByDistance bool
}

// Plan is the planner's decision for one Query.
type Plan struct {
	// Backend is the chosen engine's display name ("Sharded", "RR*",
	// "Grid", "KDB", …).
	Backend string
	// Batch is the micro-batch size at which the chosen backend's
	// per-call overhead amortises well for queries of this cost — a hint
	// to batching clients and the coalescer, not a requirement.
	Batch int
	// Coalesce reports whether the query is cheap enough that riding the
	// request coalescer (micro-batching with concurrent traffic) is
	// expected to win over a direct engine call.
	Coalesce bool
	// EstCostUS is the modelled execution cost in microseconds;
	// EstRows the estimated result cardinality (windows only).
	EstCostUS float64
	EstRows   float64
}

// Result is one executed Query: the answer plus the plan that produced
// it and its measured cost, so EXPLAIN can show estimated vs actual.
type Result struct {
	// Points is the result set. A point probe answers with the probe
	// point itself when found, so every query shape returns rows.
	Points []geom.Point
	// Found reports a non-empty answer (for point probes: existence).
	Found bool
	// Plan is the plan that was executed.
	Plan Plan
	// ActualUS is the measured engine execution time in microseconds.
	ActualUS float64
}

// Execute runs q against a single fixed engine — the degenerate
// "planner" every non-planner server uses for SQL, and the per-backend
// executor MultiEngine routes through. The plan in the result names the
// engine with no cost estimate (there is no model to estimate with).
func Execute(ctx context.Context, eng rsmi.Engine, q Query) (Result, error) {
	res := Result{Plan: Plan{Backend: eng.Name(), Batch: 1}}
	start := time.Now()
	switch q.Kind {
	case KindPoint:
		found, err := eng.PointQueryContext(ctx, q.Point)
		if err != nil {
			return Result{}, err
		}
		res.Found = found
		if found {
			res.Points = []geom.Point{q.Point}
		}
	case KindWindow:
		pts, err := eng.WindowQueryContext(ctx, q.Window)
		if err != nil {
			return Result{}, err
		}
		res.Points = FinishWindow(q, pts)
		res.Found = len(res.Points) > 0
	case KindKNN:
		pts, err := eng.KNNContext(ctx, q.Point, q.K)
		if err != nil {
			return Result{}, err
		}
		res.Points = pts
		res.Found = len(pts) > 0
	default:
		return Result{}, fmt.Errorf("plan: unknown query kind %v", q.Kind)
	}
	res.ActualUS = float64(time.Since(start).Nanoseconds()) / 1e3
	return res, nil
}

// FinishWindow applies q's ORDER BY ST_Distance and LIMIT clauses to a
// window answer. Ordering is total (distance, then canonical point
// order), so truncated results are deterministic across backends.
func FinishWindow(q Query, pts []geom.Point) []geom.Point {
	if q.OrderByDistance {
		index.SortByDistance(pts, q.Point)
	}
	if q.Limit > 0 && len(pts) > q.Limit {
		pts = pts[:q.Limit]
	}
	return pts
}
