package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SlowLog writes one JSON line per request slower than a threshold,
// rate-limited by a token bucket so a latency regression cannot turn
// the log into its own outage. Lines are self-contained records — no
// state spans lines — so they grep and pipe into jq cleanly.
type SlowLog struct {
	w         io.Writer
	threshold time.Duration

	mu     sync.Mutex
	perSec float64
	burst  float64
	tokens float64
	last   time.Time

	logged     atomic.Int64
	suppressed atomic.Int64
}

// SlowLogRecord is the JSON shape of one slow-query log line (and the
// documented contract for log consumers).
type SlowLogRecord struct {
	Time      string  `json:"time"`
	TraceID   uint64  `json:"trace_id"`
	Op        string  `json:"op"`
	Transport string  `json:"transport"`
	Backend   string  `json:"backend,omitempty"`
	TotalUs   float64 `json:"total_us"`
	// Per-stage spans, in microseconds. Their sum approximates TotalUs;
	// the remainder is unattributed scheduling time.
	AdmissionUs float64 `json:"admission_us"`
	DecodeUs    float64 `json:"decode_us"`
	CoalesceUs  float64 `json:"coalesce_us"`
	ExecuteUs   float64 `json:"execute_us"`
	EncodeUs    float64 `json:"encode_us"`
	// CoalesceBatch is the micro-batch size the request executed in
	// (0 = not coalesced).
	CoalesceBatch int64 `json:"coalesce_batch,omitempty"`
	ShardsVisited int64 `json:"shards_visited,omitempty"`
	BlockAccesses int64 `json:"block_accesses,omitempty"`
}

// NewSlowLog logs requests slower than threshold to w, at most
// maxPerSec lines per second (<= 0 defaults to 10; bursts up to one
// second's budget). threshold <= 0 logs every traced request — useful
// for debugging, ruinous in production.
func NewSlowLog(w io.Writer, threshold time.Duration, maxPerSec float64) *SlowLog {
	if maxPerSec <= 0 {
		maxPerSec = 10
	}
	return &SlowLog{
		w:         w,
		threshold: threshold,
		perSec:    maxPerSec,
		burst:     maxPerSec,
		tokens:    maxPerSec,
		last:      time.Now(),
	}
}

// Threshold reports the configured slowness threshold.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Logged reports lines written; Suppressed reports lines dropped by the
// rate limit. Their sum is every request that crossed the threshold.
func (l *SlowLog) Logged() int64     { return l.logged.Load() }
func (l *SlowLog) Suppressed() int64 { return l.suppressed.Load() }

// maybeLog writes t's record if total crossed the threshold and the
// rate limit admits it.
func (l *SlowLog) maybeLog(t *Trace, total time.Duration) {
	if total < l.threshold {
		return
	}
	rec := SlowLogRecord{
		Time:          time.Now().UTC().Format(time.RFC3339Nano),
		TraceID:       t.ID,
		Op:            t.Op,
		Transport:     t.Transport,
		Backend:       t.Backend,
		TotalUs:       float64(total.Nanoseconds()) / 1e3,
		AdmissionUs:   float64(t.StageNS(StageAdmission)) / 1e3,
		DecodeUs:      float64(t.StageNS(StageDecode)) / 1e3,
		CoalesceUs:    float64(t.StageNS(StageCoalesce)) / 1e3,
		ExecuteUs:     float64(t.StageNS(StageExecute)) / 1e3,
		EncodeUs:      float64(t.StageNS(StageEncode)) / 1e3,
		CoalesceBatch: t.BatchSize(),
		ShardsVisited: t.Shards(),
		BlockAccesses: t.Accesses(),
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.perSec
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	if l.tokens < 1 {
		l.mu.Unlock()
		l.suppressed.Add(1)
		return
	}
	l.tokens--
	_, werr := l.w.Write(b)
	l.mu.Unlock()
	if werr == nil {
		l.logged.Add(1)
	}
}
