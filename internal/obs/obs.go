// Package obs is the serving tier's observability substrate: a pooled
// per-request trace (stage spans, shards visited, block accesses,
// coalesce batch size) threaded through the request path via context,
// an atomic 1-in-N sampler, and a rate-limited structured slow-query
// log.
//
// The package exists to make the paper's accesses-vs-time distinction
// visible per request ("The Case for Learned Spatial Indexes" frames
// evaluation around block accesses, not just wall-clock): a trace
// attributes one request's latency to admission vs decode vs coalesce
// wait vs shard fan-out vs encode, and carries the block-access count
// alongside.
//
// # Cost model
//
// Everything is designed so the untraced path pays nothing measurable:
// every Trace method is a no-op on a nil receiver, FromContext on a
// context without a trace is one allocation-free Value lookup, and
// Observer.ShouldTrace with sampling off is a nil check. Traces are
// recycled through a sync.Pool, so even the traced path allocates only
// the context carrying the trace. TestUntracedPathAllocs asserts the
// untraced primitives at zero allocations the same way the wire
// encoders are pinned.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one segment of a request's lifecycle. Stages are
// disjoint: their spans sum to (roughly) the request's total, which is
// what makes the slow-query log and EXPLAIN breakdowns readable.
type Stage uint8

const (
	// StageAdmission spans request arrival to passing the admission gate.
	StageAdmission Stage = iota
	// StageDecode spans wire decode and validation.
	StageDecode
	// StagePlan spans query planning: selectivity estimation and the
	// cost-based backend choice (SQL and planner-served requests only).
	StagePlan
	// StageCoalesce spans the wait inside the request coalescer, from
	// submission to the micro-batch starting to execute.
	StageCoalesce
	// StageExecute spans engine execution (including shard fan-out).
	StageExecute
	// StageEncode spans response encoding and the write to the wire.
	StageEncode
	// NumStages counts the stages; valid Stage values are < NumStages.
	NumStages
)

var stageNames = [NumStages]string{"admission", "decode", "plan", "coalesce", "execute", "encode"}

// String names the stage as it appears in logs, EXPLAIN output, and the
// loadgen breakdown table.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Trace accumulates one request's observability record. A nil *Trace is
// the untraced request: every method no-ops, so call sites thread a
// maybe-nil trace without branching. Fields written concurrently (a
// shard fan-out runs AddShards from worker goroutines) are atomics.
//
//rsmi:nilsafe
type Trace struct {
	// ID is unique per process run; it correlates a slow-log line with
	// an EXPLAIN response or a client-side record.
	ID uint64
	// Op and Transport label the request ("window", "stream").
	Op        string
	Transport string
	// Backend is the engine's display name, set when execution starts.
	Backend string
	// Explain marks a trace the client asked to receive inline.
	Explain bool

	start     time.Time
	batchSize atomic.Int64
	shards    atomic.Int64
	accesses  atomic.Int64
	stages    [NumStages]atomic.Int64 // nanoseconds per stage
	plan      atomic.Pointer[PlanInfo]
}

// PlanInfo records the cost-based planner's decision for one request:
// the chosen backend and the estimated vs actual cost, so EXPLAIN makes
// mispredictions observable per query.
type PlanInfo struct {
	Backend      string
	EstCostUS    float64
	ActualCostUS float64
	EstRows      float64
}

var (
	tracePool = sync.Pool{New: func() interface{} { return new(Trace) }}
	traceID   atomic.Uint64
)

// StartTrace takes a trace from the pool, resets it, stamps its start
// time, and assigns a fresh id.
func StartTrace(op, transport string) *Trace {
	t := tracePool.Get().(*Trace)
	t.ID = traceID.Add(1)
	t.Op, t.Transport = op, transport
	t.Backend = ""
	t.Explain = false
	t.start = time.Now()
	t.batchSize.Store(0)
	t.shards.Store(0)
	t.accesses.Store(0)
	t.plan.Store(nil)
	for i := range t.stages {
		t.stages[i].Store(0)
	}
	return t
}

// Release returns the trace to the pool. The caller must not touch it
// afterwards.
func (t *Trace) Release() {
	if t != nil {
		tracePool.Put(t)
	}
}

// StartTime reports when the trace began (zero for a nil trace).
func (t *Trace) StartTime() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// ObserveStage adds d to a stage's span. Stages touched more than once
// accumulate.
//
//rsmi:noalloc
func (t *Trace) ObserveStage(s Stage, d time.Duration) {
	if t == nil {
		return
	}
	t.stages[s].Add(d.Nanoseconds())
}

// MarkSince records now-since into the stage and returns now, so call
// sites chain consecutive stage boundaries with one clock read each.
// On a nil trace it returns the zero time without reading the clock —
// the untraced path never pays for time.Now. A zero since means the
// boundary was never measured (a late trace created after the stage
// ran, whose earlier marks hit a nil receiver): the stage is left
// unrecorded rather than charged now-minus-epoch.
//
//rsmi:noalloc
func (t *Trace) MarkSince(since time.Time, s Stage) time.Time {
	if t == nil {
		return time.Time{}
	}
	now := time.Now()
	if !since.IsZero() {
		t.stages[s].Add(now.Sub(since).Nanoseconds())
	}
	return now
}

// AddShards counts shards visited during execution.
//
//rsmi:noalloc
func (t *Trace) AddShards(n int) {
	if t != nil {
		t.shards.Add(int64(n))
	}
}

// AddAccesses counts block accesses attributed to this request. On a
// coalesced path the count covers the whole micro-batch the request
// rode in (batch size is recorded alongside), and under concurrency it
// may include accesses of overlapping engine calls; it is exact when
// measured sequentially — the intended EXPLAIN debugging mode.
//
//rsmi:noalloc
func (t *Trace) AddAccesses(n int64) {
	if t != nil {
		t.accesses.Add(n)
	}
}

// SetBatchSize records the size of the coalescer micro-batch the
// request executed in (0 = never coalesced, 1 = a batch of itself).
//
//rsmi:noalloc
func (t *Trace) SetBatchSize(n int) {
	if t != nil {
		t.batchSize.Store(int64(n))
	}
}

// SetPlan attaches the planner's decision to the trace (nil-safe; the
// pointer store keeps concurrent readers race-free).
func (t *Trace) SetPlan(p PlanInfo) {
	if t != nil {
		t.plan.Store(&p)
	}
}

// Plan reads the attached planner decision, nil when the request was
// not planned.
func (t *Trace) Plan() *PlanInfo {
	if t == nil {
		return nil
	}
	return t.plan.Load()
}

// StageNS reads one stage's accumulated nanoseconds.
func (t *Trace) StageNS(s Stage) int64 {
	if t == nil {
		return 0
	}
	return t.stages[s].Load()
}

// Shards reads the shards-visited count.
func (t *Trace) Shards() int64 {
	if t == nil {
		return 0
	}
	return t.shards.Load()
}

// Accesses reads the block-access count.
func (t *Trace) Accesses() int64 {
	if t == nil {
		return 0
	}
	return t.accesses.Load()
}

// BatchSize reads the coalesce batch size.
func (t *Trace) BatchSize() int64 {
	if t == nil {
		return 0
	}
	return t.batchSize.Load()
}

// ctxKey is the context key for the request trace. A zero-size key
// makes the Value lookup allocation-free.
type ctxKey struct{}

// With returns ctx carrying t. A nil trace returns ctx unchanged, so
// the untraced path allocates nothing.
//
//rsmi:noalloc
func With(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. The nil result
// composes with the nil-receiver methods above: engine internals call
// FromContext(ctx).AddShards(n) unconditionally and the untraced path
// pays one Value lookup.
//
//rsmi:noalloc
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// Observer decides which requests are traced and owns the slow-query
// log. A nil *Observer never traces — servers built without one pay a
// single nil check per request.
//
//rsmi:nilsafe
type Observer struct {
	sampleN int64
	n       atomic.Int64
	slow    *SlowLog
}

// NewObserver traces one in sampleEvery requests (0 disables sampling)
// and feeds every completed trace to slow (nil disables the slow-query
// log). A non-nil SlowLog forces tracing of every request — outliers
// cannot be spotted without spans — which is the documented cost of
// enabling it.
func NewObserver(sampleEvery int, slow *SlowLog) *Observer {
	return &Observer{sampleN: int64(sampleEvery), slow: slow}
}

// ShouldTrace makes the per-request tracing decision: true when the
// slow-query log is on, or the atomic sample counter hits. Nil-safe.
//
//rsmi:noalloc
func (o *Observer) ShouldTrace() bool {
	if o == nil {
		return false
	}
	if o.slow != nil {
		return true
	}
	if o.sampleN <= 0 {
		return false
	}
	return o.n.Add(1)%o.sampleN == 0
}

// SlowLog returns the observer's slow-query log (nil when disabled).
func (o *Observer) SlowLog() *SlowLog {
	if o == nil {
		return nil
	}
	return o.slow
}

// Finish completes a trace: it offers it to the slow-query log, then
// recycles it. Safe on a nil observer (explain-only tracing) and a nil
// trace (untraced request); the caller must copy anything it still
// needs — EXPLAIN responses encode the trace before Finish.
func (o *Observer) Finish(t *Trace) {
	if t == nil {
		return
	}
	if o != nil && o.slow != nil {
		o.slow.maybeLog(t, time.Since(t.start))
	}
	t.Release()
}
