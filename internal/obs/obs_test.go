package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestUntracedPathAllocs pins the untraced primitives — the only obs
// code the hot path executes — at zero allocations, the same way the
// wire encoders are pinned: a nil-observer tracing decision, a Value
// lookup on a trace-free context, and every nil-receiver recorder.
func TestUntracedPathAllocs(t *testing.T) {
	ctx := context.Background()
	var o *Observer
	allocs := testing.AllocsPerRun(1000, func() {
		if o.ShouldTrace() {
			t.Fatal("nil observer traced")
		}
		tr := FromContext(ctx)
		if tr != nil {
			t.Fatal("trace on a bare context")
		}
		tr.AddShards(3)
		tr.AddAccesses(7)
		tr.SetBatchSize(4)
		tr.ObserveStage(StageExecute, time.Microsecond)
		tr.MarkSince(time.Time{}, StageEncode)
		if With(ctx, tr) != ctx {
			t.Fatal("With(nil) changed the context")
		}
	})
	if allocs != 0 {
		t.Fatalf("untraced path allocates %.1f times per request, want 0", allocs)
	}
}

// TestSamplerDisabledAllocs pins the sampling-miss path (observer
// present, sampling off) at zero allocations too.
func TestSamplerDisabledAllocs(t *testing.T) {
	o := NewObserver(0, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		if o.ShouldTrace() {
			t.Fatal("sampling-off observer traced")
		}
	})
	if allocs != 0 {
		t.Fatalf("sampling-off decision allocates %.1f times, want 0", allocs)
	}
}

func TestSamplerRate(t *testing.T) {
	o := NewObserver(8, nil)
	hits := 0
	for i := 0; i < 800; i++ {
		if o.ShouldTrace() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-8 sampler hit %d of 800, want 100", hits)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := StartTrace("window", "http")
	defer tr.Release()
	ctx := With(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
	tr.AddShards(2)
	tr.AddAccesses(5)
	tr.SetBatchSize(3)
	tr.ObserveStage(StageExecute, 250*time.Microsecond)
	if tr.Shards() != 2 || tr.Accesses() != 5 || tr.BatchSize() != 3 {
		t.Fatalf("counters = %d/%d/%d, want 2/5/3", tr.Shards(), tr.Accesses(), tr.BatchSize())
	}
	if ns := tr.StageNS(StageExecute); ns != 250_000 {
		t.Fatalf("execute stage = %dns, want 250000", ns)
	}
}

// TestTraceReuseResets catches stale state leaking through the pool: a
// released trace picked up by a later request must start clean.
func TestTraceReuseResets(t *testing.T) {
	tr := StartTrace("knn", "stream")
	tr.Backend = "Sharded"
	tr.Explain = true
	tr.AddShards(9)
	tr.AddAccesses(9)
	tr.SetBatchSize(9)
	tr.ObserveStage(StageDecode, time.Second)
	id := tr.ID
	tr.Release()
	// The pool is per-P; in a single-goroutine test the next Get returns
	// the released object.
	tr2 := StartTrace("point", "http")
	defer tr2.Release()
	if tr2.ID == id {
		t.Fatalf("trace id not refreshed: %d", tr2.ID)
	}
	if tr2.Backend != "" || tr2.Explain {
		t.Fatalf("backend/explain leaked: %q/%v", tr2.Backend, tr2.Explain)
	}
	if tr2.Shards() != 0 || tr2.Accesses() != 0 || tr2.BatchSize() != 0 {
		t.Fatal("counters leaked through the pool")
	}
	for s := Stage(0); s < NumStages; s++ {
		if tr2.StageNS(s) != 0 {
			t.Fatalf("stage %v leaked %dns through the pool", s, tr2.StageNS(s))
		}
	}
}

func TestStageNames(t *testing.T) {
	want := []string{"admission", "decode", "plan", "coalesce", "execute", "encode"}
	for s := Stage(0); s < NumStages; s++ {
		if s.String() != want[s] {
			t.Fatalf("Stage(%d) = %q, want %q", s, s.String(), want[s])
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatalf("out-of-range stage = %q", Stage(200).String())
	}
}

// TestSlowLog exercises the threshold, the JSON line shape, and the
// rate limit.
func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	sl := NewSlowLog(&buf, 10*time.Millisecond, 5)
	o := NewObserver(0, sl)
	if !o.ShouldTrace() {
		t.Fatal("slow-log observer must trace every request")
	}

	fast := StartTrace("point", "http")
	fast.start = time.Now() // total ≈ 0, under threshold
	o.Finish(fast)
	if buf.Len() != 0 {
		t.Fatalf("fast request logged: %q", buf.String())
	}

	for i := 0; i < 8; i++ {
		slow := StartTrace("window", "http")
		slow.Backend = "Sharded"
		slow.start = time.Now().Add(-50 * time.Millisecond)
		slow.ObserveStage(StageExecute, 40*time.Millisecond)
		slow.AddShards(4)
		o.Finish(slow)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Burst capacity is 5: the remaining 3 must be rate-limited away.
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5 (rate limit)", len(lines))
	}
	if sl.Logged() != 5 || sl.Suppressed() != 3 {
		t.Fatalf("logged/suppressed = %d/%d, want 5/3", sl.Logged(), sl.Suppressed())
	}
	for _, line := range lines {
		var rec SlowLogRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad slow-log line %q: %v", line, err)
		}
		if rec.Op != "window" || rec.Transport != "http" || rec.Backend != "Sharded" {
			t.Fatalf("labels wrong in %q", line)
		}
		if rec.TotalUs < 40_000 {
			t.Fatalf("total %fµs under the induced 50ms", rec.TotalUs)
		}
		if rec.ExecuteUs < 39_000 || rec.ShardsVisited != 4 {
			t.Fatalf("stage/shard fields wrong in %q", line)
		}
	}
}

// TestTraceConcurrent hammers one trace's atomic recorders from many
// goroutines (run under -race in CI).
func TestTraceConcurrent(t *testing.T) {
	tr := StartTrace("window", "stream")
	defer tr.Release()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.AddShards(1)
				tr.AddAccesses(2)
				tr.ObserveStage(StageExecute, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if tr.Shards() != 8000 || tr.Accesses() != 16000 {
		t.Fatalf("shards/accesses = %d/%d, want 8000/16000", tr.Shards(), tr.Accesses())
	}
	if tr.StageNS(StageExecute) != 8000*1000 {
		t.Fatalf("execute stage = %dns, want 8000000", tr.StageNS(StageExecute))
	}
}

// A late trace (created after a stage already ran, e.g. the rsmibin
// explain flag bit is only known post-decode) marks that stage with
// the zero time returned by the earlier nil-receiver MarkSince. The
// stage must stay unrecorded — not get charged now-minus-epoch.
func TestMarkSinceZeroTimeUnrecorded(t *testing.T) {
	var nilTrace *Trace
	t1 := nilTrace.MarkSince(time.Now(), StageAdmission)
	if !t1.IsZero() {
		t.Fatalf("nil MarkSince returned non-zero time %v", t1)
	}
	tr := StartTrace("window", "stream")
	defer tr.Release()
	now := tr.MarkSince(t1, StageDecode)
	if now.IsZero() {
		t.Fatal("MarkSince on a live trace must return now for chaining")
	}
	if ns := tr.StageNS(StageDecode); ns != 0 {
		t.Fatalf("zero-since mark recorded %dns (epoch charge leaked into the span)", ns)
	}
}
