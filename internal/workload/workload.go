// Package workload generates the query workloads of §6.1: window queries of
// a given size (as a fraction of the data space) and aspect ratio, and kNN
// query points, both "following the data distribution" — each query is
// centred on a sampled data point.
package workload

import (
	"math"
	"math/rand"

	"rsmi/internal/geom"
)

// Paper parameter grids (Table 2); the paper's bold defaults are encoded
// here as the Default* constants for the harness.
var (
	// WindowSizes are the query window sizes as fractions of the data space
	// (the paper states them in %, i.e. 0.0006% … 0.16%).
	WindowSizes = []float64{0.000006, 0.000025, 0.0001, 0.0004, 0.0016}
	// DefaultWindowSize is the bold default 0.01%.
	DefaultWindowSize = 0.0001
	// AspectRatios are the window width:height ratios.
	AspectRatios = []float64{0.25, 0.5, 1, 2, 4}
	// DefaultAspectRatio is the bold default 1.
	DefaultAspectRatio = 1.0
	// Ks are the kNN parameter values.
	Ks = []int{1, 5, 25, 125, 625}
	// DefaultK is the bold default 25.
	DefaultK = 25
	// UpdateFractions are the insert/delete percentages of Table 2.
	UpdateFractions = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	// DefaultUpdateFraction is the bold default 30%.
	DefaultUpdateFraction = 0.3
	// DefaultQueryCount is the paper's per-experiment query count (§6.2.3).
	DefaultQueryCount = 1000
)

// Windows generates count window queries. Each window is centred at a data
// point drawn uniformly from pts, has area = sizeFrac × the unit data space,
// and width/height = aspect. Windows are clipped to the unit square, as the
// data is.
func Windows(pts []geom.Point, count int, sizeFrac, aspect float64, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Rect, 0, count)
	w := math.Sqrt(sizeFrac * aspect)
	h := sizeFrac / w
	for i := 0; i < count; i++ {
		c := pts[rng.Intn(len(pts))]
		r := geom.RectAround(c, w, h)
		out = append(out, clipUnit(r))
	}
	return out
}

// KNNPoints generates count kNN query points by sampling data points and
// perturbing them slightly, so queries follow the data distribution without
// being guaranteed exact hits.
func KNNPoints(pts []geom.Point, count int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, 0, count)
	for i := 0; i < count; i++ {
		c := pts[rng.Intn(len(pts))]
		out = append(out, geom.Pt(
			clamp01(c.X+rng.NormFloat64()*0.001),
			clamp01(c.Y+rng.NormFloat64()*0.001),
		))
	}
	return out
}

// PointQueries samples count indexed points to use as point queries. The
// paper uses all data points (§6.2.2); for large n the harness samples.
func PointQueries(pts []geom.Point, count int, seed int64) []geom.Point {
	if count >= len(pts) {
		return append([]geom.Point(nil), pts...)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, 0, count)
	for _, i := range rng.Perm(len(pts))[:count] {
		out = append(out, pts[i])
	}
	return out
}

// InsertPoints generates count fresh points following approximately the same
// distribution as pts, by jittering sampled data points. Used by the update
// experiments (Figs. 17–19).
func InsertPoints(pts []geom.Point, count int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[geom.Point]struct{}, len(pts)+count)
	for _, p := range pts {
		seen[p] = struct{}{}
	}
	out := make([]geom.Point, 0, count)
	for len(out) < count {
		c := pts[rng.Intn(len(pts))]
		p := geom.Pt(
			clamp01(c.X+rng.NormFloat64()*0.01),
			clamp01(c.Y+rng.NormFloat64()*0.01),
		)
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		out = append(out, p)
	}
	return out
}

// DeleteSample picks count distinct existing points to delete.
func DeleteSample(pts []geom.Point, count int, seed int64) []geom.Point {
	if count > len(pts) {
		count = len(pts)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, 0, count)
	for _, i := range rng.Perm(len(pts))[:count] {
		out = append(out, pts[i])
	}
	return out
}

func clipUnit(r geom.Rect) geom.Rect {
	return geom.Rect{
		MinX: clamp01(r.MinX), MinY: clamp01(r.MinY),
		MaxX: clamp01(r.MaxX), MaxY: clamp01(r.MaxY),
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
