package workload

import (
	"math"
	"testing"

	"rsmi/internal/dataset"
	"rsmi/internal/geom"
)

func TestWindowsGeometry(t *testing.T) {
	pts := dataset.Generate(dataset.Uniform, 1000, 1)
	const size, aspect = 0.0001, 4.0
	ws := Windows(pts, 200, size, aspect, 2)
	if len(ws) != 200 {
		t.Fatalf("got %d windows", len(ws))
	}
	wantW := math.Sqrt(size * aspect)
	wantH := size / wantW
	for _, w := range ws {
		if w.MinX < 0 || w.MaxX > 1 || w.MinY < 0 || w.MaxY > 1 {
			t.Fatalf("window %v outside unit square", w)
		}
		// Unclipped windows must have the requested dimensions.
		if w.MinX > 0 && w.MaxX < 1 && math.Abs(w.Width()-wantW) > 1e-12 {
			t.Fatalf("window width %v, want %v", w.Width(), wantW)
		}
		if w.MinY > 0 && w.MaxY < 1 && math.Abs(w.Height()-wantH) > 1e-12 {
			t.Fatalf("window height %v, want %v", w.Height(), wantH)
		}
	}
}

func TestWindowsAspectRatio(t *testing.T) {
	pts := dataset.Generate(dataset.Uniform, 1000, 1)
	for _, aspect := range AspectRatios {
		ws := Windows(pts, 50, DefaultWindowSize, aspect, 3)
		for _, w := range ws {
			if w.MinX > 0 && w.MaxX < 1 && w.MinY > 0 && w.MaxY < 1 {
				if got := w.Width() / w.Height(); math.Abs(got-aspect) > 1e-9 {
					t.Fatalf("aspect %v: got %v", aspect, got)
				}
				if got := w.Area(); math.Abs(got-DefaultWindowSize) > 1e-12 {
					t.Fatalf("area %v, want %v", got, DefaultWindowSize)
				}
			}
		}
	}
}

func TestWindowsFollowDistribution(t *testing.T) {
	// Windows over skewed data must concentrate where the data is.
	pts := dataset.Generate(dataset.Skewed, 5000, 4)
	ws := Windows(pts, 500, DefaultWindowSize, 1, 5)
	low := 0
	for _, w := range ws {
		if w.Center().Y < 0.2 {
			low++
		}
	}
	if frac := float64(low) / float64(len(ws)); frac < 0.5 {
		t.Errorf("only %.2f of windows in dense region; queries must follow data", frac)
	}
}

func TestWindowsDeterministic(t *testing.T) {
	pts := dataset.Generate(dataset.Uniform, 100, 1)
	a := Windows(pts, 20, DefaultWindowSize, 1, 7)
	b := Windows(pts, 20, DefaultWindowSize, 1, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("windows not deterministic")
		}
	}
}

func TestKNNPointsInRangeAndNearData(t *testing.T) {
	pts := dataset.Generate(dataset.Normal, 2000, 2)
	qs := KNNPoints(pts, 300, 6)
	if len(qs) != 300 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.X < 0 || q.X > 1 || q.Y < 0 || q.Y > 1 {
			t.Fatalf("query %v outside unit square", q)
		}
	}
	// Most queries should be near the data's centre of mass.
	near := 0
	for _, q := range qs {
		if math.Abs(q.X-0.5) < 0.3 && math.Abs(q.Y-0.5) < 0.3 {
			near++
		}
	}
	if frac := float64(near) / float64(len(qs)); frac < 0.5 {
		t.Errorf("only %.2f of kNN queries near data mass", frac)
	}
}

func TestPointQueriesSampling(t *testing.T) {
	pts := dataset.Generate(dataset.Uniform, 100, 3)
	all := PointQueries(pts, 1000, 8)
	if len(all) != 100 {
		t.Errorf("oversized count must return all points, got %d", len(all))
	}
	some := PointQueries(pts, 10, 8)
	if len(some) != 10 {
		t.Fatalf("got %d queries", len(some))
	}
	set := make(map[geom.Point]struct{}, len(pts))
	for _, p := range pts {
		set[p] = struct{}{}
	}
	seen := make(map[geom.Point]struct{})
	for _, q := range some {
		if _, ok := set[q]; !ok {
			t.Fatalf("sampled query %v not a data point", q)
		}
		if _, dup := seen[q]; dup {
			t.Fatalf("duplicate sample %v", q)
		}
		seen[q] = struct{}{}
	}
}

func TestInsertPointsFreshAndDistinct(t *testing.T) {
	pts := dataset.Generate(dataset.Skewed, 1000, 4)
	ins := InsertPoints(pts, 500, 9)
	if len(ins) != 500 {
		t.Fatalf("got %d inserts", len(ins))
	}
	existing := make(map[geom.Point]struct{}, len(pts))
	for _, p := range pts {
		existing[p] = struct{}{}
	}
	seen := make(map[geom.Point]struct{})
	for _, p := range ins {
		if _, clash := existing[p]; clash {
			t.Fatalf("insert %v collides with existing point", p)
		}
		if _, dup := seen[p]; dup {
			t.Fatalf("duplicate insert %v", p)
		}
		seen[p] = struct{}{}
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("insert %v outside unit square", p)
		}
	}
}

func TestDeleteSample(t *testing.T) {
	pts := dataset.Generate(dataset.Uniform, 200, 5)
	del := DeleteSample(pts, 50, 10)
	if len(del) != 50 {
		t.Fatalf("got %d deletes", len(del))
	}
	set := make(map[geom.Point]struct{}, len(pts))
	for _, p := range pts {
		set[p] = struct{}{}
	}
	seen := make(map[geom.Point]struct{})
	for _, p := range del {
		if _, ok := set[p]; !ok {
			t.Fatalf("delete %v is not an indexed point", p)
		}
		if _, dup := seen[p]; dup {
			t.Fatalf("duplicate delete %v", p)
		}
		seen[p] = struct{}{}
	}
	if got := DeleteSample(pts, 5000, 10); len(got) != 200 {
		t.Errorf("oversized delete sample = %d, want 200", len(got))
	}
}

func TestPaperParameterGrids(t *testing.T) {
	// Guard the Table 2 constants against accidental edits.
	if len(WindowSizes) != 5 || WindowSizes[2] != DefaultWindowSize {
		t.Error("window size grid drifted from Table 2")
	}
	if len(Ks) != 5 || Ks[2] != DefaultK {
		t.Error("k grid drifted from Table 2")
	}
	if len(AspectRatios) != 5 || AspectRatios[2] != DefaultAspectRatio {
		t.Error("aspect grid drifted from Table 2")
	}
	if len(UpdateFractions) != 5 || UpdateFractions[2] != DefaultUpdateFraction {
		t.Error("update grid drifted from Table 2")
	}
}
