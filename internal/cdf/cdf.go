// Package cdf implements the piecewise mapping function (PMF) of §4.3, used
// by the kNN algorithm to estimate the skew parameters αx and αy that size
// the initial search region.
//
// Following the paper (which follows [48]): the data set is partitioned into
// γ partitions by one coordinate; for the boundary point x_i of each
// partition a cumulative count is recorded; and piecewise linear functions
// connect the points (x_i.cord, x_{i-1}.c / n) to approximate the true CDF.
// The paper uses γ = 100 and ∆ = 0.01.
package cdf

import (
	"sort"
)

// DefaultGamma is the paper's number of PMF pieces (γ = 100, §4.3).
const DefaultGamma = 100

// DefaultDelta is the paper's slope-probing step (∆ = 0.01, §4.3).
const DefaultDelta = 0.01

// maxAlpha caps the skew parameter so a query in an empty region cannot
// produce an unbounded initial search window; the expansion loop of
// Algorithm 3 takes over from there.
const maxAlpha = 64

// PMF is a piecewise linear approximation of a one-dimensional CDF.
type PMF struct {
	// knots are the γ+1 partition boundary coordinates, ascending.
	knots []float64
	// cum[i] is the fraction of points with coordinate <= knots[i].
	cum []float64
}

// New builds a PMF over the given coordinates with γ pieces. The input slice
// is not modified. New returns a degenerate (uniform) PMF for fewer than two
// points or zero spread, which keeps kNN working on tiny or collapsed data.
func New(coords []float64, gamma int) *PMF {
	if gamma <= 0 {
		gamma = DefaultGamma
	}
	n := len(coords)
	if n < 2 {
		return &PMF{knots: []float64{0, 1}, cum: []float64{0, 1}}
	}
	sorted := append([]float64(nil), coords...)
	sort.Float64s(sorted)
	if sorted[0] == sorted[n-1] {
		return &PMF{knots: []float64{sorted[0], sorted[0] + 1}, cum: []float64{0, 1}}
	}
	if gamma > n {
		gamma = n
	}
	knots := make([]float64, 0, gamma+1)
	cum := make([]float64, 0, gamma+1)
	knots = append(knots, sorted[0])
	cum = append(cum, 0)
	for i := 1; i <= gamma; i++ {
		// Boundary point of the i-th partition.
		idx := i*n/gamma - 1
		k := sorted[idx]
		c := float64(idx+1) / float64(n)
		// Collapse duplicate knots (heavy ties) keeping the larger count.
		if k == knots[len(knots)-1] {
			cum[len(cum)-1] = c
			continue
		}
		knots = append(knots, k)
		cum = append(cum, c)
	}
	return &PMF{knots: knots, cum: cum}
}

// Eval returns the PMF's CDF estimate at x, clamped to [0, 1].
func (f *PMF) Eval(x float64) float64 {
	k := f.knots
	if x <= k[0] {
		return 0
	}
	last := len(k) - 1
	if x >= k[last] {
		return 1
	}
	// Binary search for the piece containing x.
	i := sort.SearchFloat64s(k, x)
	// k[i-1] < x <= k[i]
	x0, x1 := k[i-1], k[i]
	c0, c1 := f.cum[i-1], f.cum[i]
	return c0 + (c1-c0)*(x-x0)/(x1-x0)
}

// Alpha estimates the skew parameter at coordinate x using the paper's
// Eq. 6: α = ∆ / (CDF(x+∆) − CDF(x)). For uniform data α ≈ 1; in dense
// regions α < 1 (smaller initial window); in sparse regions α > 1. The
// result is clamped to [1/maxAlpha, maxAlpha].
func (f *PMF) Alpha(x, delta float64) float64 {
	if delta <= 0 {
		delta = DefaultDelta
	}
	rise := f.Eval(x+delta) - f.Eval(x)
	if rise <= 0 {
		// No mass ahead of x: probe backwards before giving up.
		rise = f.Eval(x) - f.Eval(x-delta)
	}
	if rise <= delta/maxAlpha {
		return maxAlpha
	}
	a := delta / rise
	if a < 1.0/maxAlpha {
		a = 1.0 / maxAlpha
	}
	return a
}

// Pieces returns the number of linear pieces in the PMF.
func (f *PMF) Pieces() int { return len(f.knots) - 1 }

// SizeBytes returns the storage footprint of the PMF (two float64 per knot),
// counted into index size for RSMI.
func (f *PMF) SizeBytes() int64 { return int64(len(f.knots)) * 16 }
