package cdf

import (
	"encoding/binary"
	"fmt"
	"io"
)

// WriteTo serialises the PMF's knots and cumulative fractions. It
// implements io.WriterTo.
func (f *PMF) WriteTo(w io.Writer) (int64, error) {
	var written int64
	if err := binary.Write(w, binary.LittleEndian, int32(len(f.knots))); err != nil {
		return written, fmt.Errorf("cdf: write header: %w", err)
	}
	written += 4
	for _, s := range [][]float64{f.knots, f.cum} {
		if err := binary.Write(w, binary.LittleEndian, s); err != nil {
			return written, fmt.Errorf("cdf: write knots: %w", err)
		}
		written += int64(8 * len(s))
	}
	return written, nil
}

// ReadPMF deserialises a PMF written by WriteTo.
func ReadPMF(r io.Reader) (*PMF, error) {
	var n int32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("cdf: read header: %w", err)
	}
	const maxKnots = 1 << 24
	if n < 2 || n > maxKnots {
		return nil, fmt.Errorf("cdf: implausible knot count %d", n)
	}
	f := &PMF{knots: make([]float64, n), cum: make([]float64, n)}
	for _, dst := range [][]float64{f.knots, f.cum} {
		if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("cdf: read knots: %w", err)
		}
	}
	for i := 1; i < int(n); i++ {
		if f.knots[i] < f.knots[i-1] || f.cum[i] < f.cum[i-1] {
			return nil, fmt.Errorf("cdf: non-monotone data at knot %d", i)
		}
	}
	return f, nil
}
