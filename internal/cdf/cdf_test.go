package cdf

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func uniformCoords(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

func TestEvalMonotoneAndBounded(t *testing.T) {
	f := New(uniformCoords(5000, 1), DefaultGamma)
	prev := -1.0
	for x := -0.2; x <= 1.2; x += 0.001 {
		v := f.Eval(x)
		if v < 0 || v > 1 {
			t.Fatalf("Eval(%v) = %v out of [0,1]", x, v)
		}
		if v < prev {
			t.Fatalf("Eval not monotone at %v: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestEvalApproximatesUniformCDF(t *testing.T) {
	f := New(uniformCoords(20000, 2), DefaultGamma)
	for x := 0.05; x < 1; x += 0.05 {
		if got := f.Eval(x); math.Abs(got-x) > 0.02 {
			t.Errorf("uniform Eval(%v) = %v, want ~%v", x, got, x)
		}
	}
}

func TestEvalApproximatesSkewedCDF(t *testing.T) {
	// y = u^4 has CDF F(y) = y^(1/4).
	rng := rand.New(rand.NewSource(3))
	coords := make([]float64, 20000)
	for i := range coords {
		u := rng.Float64()
		coords[i] = u * u * u * u
	}
	f := New(coords, DefaultGamma)
	for y := 0.05; y < 1; y += 0.05 {
		want := math.Pow(y, 0.25)
		if got := f.Eval(y); math.Abs(got-want) > 0.03 {
			t.Errorf("skewed Eval(%v) = %v, want ~%v", y, got, want)
		}
	}
}

func TestEvalAgainstEmpiricalCDFProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(2000)
		coords := make([]float64, n)
		for i := range coords {
			coords[i] = rng.NormFloat64()
		}
		pm := New(coords, DefaultGamma)
		sorted := append([]float64(nil), coords...)
		sort.Float64s(sorted)
		// PMF must track the empirical CDF within a few partition widths.
		for i := 0; i < 20; i++ {
			x := sorted[rng.Intn(n)]
			emp := float64(sort.SearchFloat64s(sorted, x)) / float64(n)
			if math.Abs(pm.Eval(x)-emp) > 0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAlphaUniformIsAboutOne(t *testing.T) {
	f := New(uniformCoords(50000, 4), DefaultGamma)
	for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		a := f.Alpha(x, DefaultDelta)
		if a < 0.8 || a > 1.25 {
			t.Errorf("uniform Alpha(%v) = %v, want ~1", x, a)
		}
	}
}

func TestAlphaReflectsSkew(t *testing.T) {
	// Dense near 0, sparse near 1 (y^4 skew): alpha must be < 1 in the
	// dense region and > 1 in the sparse region.
	rng := rand.New(rand.NewSource(5))
	coords := make([]float64, 50000)
	for i := range coords {
		u := rng.Float64()
		coords[i] = u * u * u * u
	}
	f := New(coords, DefaultGamma)
	if a := f.Alpha(0.01, DefaultDelta); a >= 1 {
		t.Errorf("Alpha in dense region = %v, want < 1", a)
	}
	if a := f.Alpha(0.9, DefaultDelta); a <= 1 {
		t.Errorf("Alpha in sparse region = %v, want > 1", a)
	}
}

func TestAlphaClamped(t *testing.T) {
	// All mass in [0, 0.1]: probing far away (both directions empty) must
	// return the cap, not Inf.
	rng := rand.New(rand.NewSource(12))
	coords := make([]float64, 1000)
	for i := range coords {
		coords[i] = rng.Float64() * 0.1
	}
	f := New(coords, DefaultGamma)
	if a := f.Alpha(0.99, DefaultDelta); a != maxAlpha {
		t.Errorf("Alpha in empty region = %v, want cap %v", a, maxAlpha)
	}
	if a := f.Alpha(0.05, 0); a <= 0 { // zero delta selects the default
		t.Errorf("Alpha with default delta = %v", a)
	}
}

func TestAlphaBackwardProbe(t *testing.T) {
	// Query at the very top of the range: forward probe has no mass, the
	// backward probe must rescue the estimate.
	coords := uniformCoords(10000, 6)
	f := New(coords, DefaultGamma)
	a := f.Alpha(1.0, DefaultDelta)
	if a >= maxAlpha {
		t.Errorf("Alpha(1.0) = %v, backward probe should keep it finite", a)
	}
}

func TestDegenerateInputs(t *testing.T) {
	for _, coords := range [][]float64{nil, {0.4}, {0.7, 0.7, 0.7}} {
		f := New(coords, DefaultGamma)
		if v := f.Eval(0.5); v < 0 || v > 1 {
			t.Errorf("degenerate Eval out of range: %v", v)
		}
		if a := f.Alpha(0.5, DefaultDelta); a <= 0 {
			t.Errorf("degenerate Alpha non-positive: %v", a)
		}
	}
}

func TestGammaControlsPieces(t *testing.T) {
	coords := uniformCoords(10000, 7)
	small := New(coords, 4)
	large := New(coords, 200)
	if small.Pieces() > 4 {
		t.Errorf("gamma=4 produced %d pieces", small.Pieces())
	}
	if large.Pieces() <= small.Pieces() {
		t.Errorf("more gamma must give more pieces: %d vs %d", large.Pieces(), small.Pieces())
	}
	if def := New(coords, 0); def.Pieces() > DefaultGamma {
		t.Errorf("default gamma produced %d pieces", def.Pieces())
	}
}

func TestGammaLargerThanN(t *testing.T) {
	coords := uniformCoords(10, 8)
	f := New(coords, 100)
	if f.Pieces() > 10 {
		t.Errorf("gamma must clamp to n: %d pieces for 10 points", f.Pieces())
	}
	if v := f.Eval(0.5); v < 0 || v > 1 {
		t.Errorf("Eval out of range: %v", v)
	}
}

func TestSizeBytes(t *testing.T) {
	f := New(uniformCoords(10000, 9), 100)
	want := int64(len(f.knots)) * 16
	if got := f.SizeBytes(); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
}
