package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Dist(tc.q); got != tc.want {
				t.Errorf("Dist(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
			if got := tc.p.Dist2(tc.q); got != tc.want*tc.want {
				t.Errorf("Dist2(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want*tc.want)
			}
		})
	}
}

func TestPointDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist2(b) == b.Dist2(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointLessTotalOrder(t *testing.T) {
	a, b, c := Point{0, 1}, Point{0, 2}, Point{1, 0}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) {
		t.Error("Less is not transitive on sample points")
	}
	if a.Less(a) {
		t.Error("Less must be irreflexive")
	}
	if b.Less(a) {
		t.Error("Less(b,a) must be false when Less(a,b)")
	}
}

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(Point{3, -1}, Point{-2, 4})
	want := Rect{MinX: -2, MinY: -1, MaxX: 3, MaxY: 4}
	if r != want {
		t.Errorf("NewRect = %v, want %v", r, want)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 5}
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{5, 2}, true},
		{Point{0, 0}, true},  // min corner inclusive
		{Point{10, 5}, true}, // max corner inclusive
		{Point{10, 0}, true}, // edge
		{Point{-0.1, 2}, false},
		{Point{5, 5.1}, false},
		{Point{11, 2}, false},
	}
	for _, tc := range tests {
		if got := r.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	base := Rect{0, 0, 10, 10}
	tests := []struct {
		name string
		o    Rect
		want bool
	}{
		{"identical", base, true},
		{"inside", Rect{2, 2, 3, 3}, true},
		{"overlap corner", Rect{8, 8, 12, 12}, true},
		{"touch edge", Rect{10, 0, 20, 10}, true},
		{"touch corner", Rect{10, 10, 20, 20}, true},
		{"disjoint right", Rect{10.5, 0, 20, 10}, false},
		{"disjoint above", Rect{0, 11, 10, 20}, false},
		{"empty", EmptyRect(), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := base.Intersects(tc.o); got != tc.want {
				t.Errorf("Intersects = %v, want %v", got, tc.want)
			}
			if got := tc.o.Intersects(base); got != tc.want {
				t.Errorf("Intersects (reversed) = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect must be empty")
	}
	if e.Area() != 0 {
		t.Errorf("empty Area = %v, want 0", e.Area())
	}
	if e.Margin() != 0 {
		t.Errorf("empty Margin = %v, want 0", e.Margin())
	}
	r := Rect{1, 2, 3, 4}
	if got := e.Union(r); got != r {
		t.Errorf("EmptyRect.Union(r) = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r.Union(EmptyRect) = %v, want %v", got, r)
	}
}

func TestUnionIsCommutativeAndContaining(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r1 := NewRect(Point{ax, ay}, Point{bx, by})
		r2 := NewRect(Point{cx, cy}, Point{dx, dy})
		u := r1.Union(r2)
		return u == r2.Union(r1) && u.ContainsRect(r1) && u.ContainsRect(r2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectWithinBoth(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r1 := NewRect(Point{ax, ay}, Point{bx, by})
		r2 := NewRect(Point{cx, cy}, Point{dx, dy})
		in := r1.Intersect(r2)
		if in.IsEmpty() {
			return !r1.Intersects(r2) ||
				// touching rectangles intersect with zero area
				in.Area() == 0
		}
		return r1.ContainsRect(in) && r2.ContainsRect(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAreaMarginCenter(t *testing.T) {
	r := Rect{1, 2, 4, 6}
	if got := r.Area(); got != 12 {
		t.Errorf("Area = %v, want 12", got)
	}
	if got := r.Margin(); got != 7 {
		t.Errorf("Margin = %v, want 7", got)
	}
	if got := r.Center(); got != (Point{2.5, 4}) {
		t.Errorf("Center = %v, want (2.5,4)", got)
	}
	if r.Width() != 3 || r.Height() != 4 {
		t.Errorf("Width/Height = %v/%v, want 3/4", r.Width(), r.Height())
	}
}

func TestEnlargement(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	if got := r.Enlargement(Rect{0, 0, 1, 1}); got != 0 {
		t.Errorf("Enlargement by contained rect = %v, want 0", got)
	}
	if got := r.Enlargement(Rect{0, 0, 4, 2}); got != 4 {
		t.Errorf("Enlargement = %v, want 4", got)
	}
}

func TestMinDist(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	tests := []struct {
		name string
		p    Point
		want float64
	}{
		{"inside", Point{5, 5}, 0},
		{"on edge", Point{10, 5}, 0},
		{"right of", Point{13, 5}, 3},
		{"above", Point{5, 14}, 4},
		{"corner diagonal", Point{13, 14}, 5},
		{"left below", Point{-3, -4}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.MinDist(tc.p); got != tc.want {
				t.Errorf("MinDist(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

// MINDIST lower-bound property: for any point q and any point p inside r,
// MinDist(q, r) <= Dist(q, p). This is the invariant best-first kNN relies on.
func TestMinDistLowerBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		r := NewRect(
			Point{rng.Float64() * 10, rng.Float64() * 10},
			Point{rng.Float64() * 10, rng.Float64() * 10},
		)
		q := Point{rng.Float64()*30 - 10, rng.Float64()*30 - 10}
		// random point inside r
		p := Point{
			r.MinX + rng.Float64()*(r.MaxX-r.MinX),
			r.MinY + rng.Float64()*(r.MaxY-r.MinY),
		}
		if md := r.MinDist2(q); md > q.Dist2(p)+1e-12 {
			t.Fatalf("MinDist2(%v,%v)=%v exceeds Dist2 to inner point %v (%v)",
				q, r, md, p, q.Dist2(p))
		}
	}
}

func TestRectAround(t *testing.T) {
	r := RectAround(Point{5, 5}, 2, 4)
	want := Rect{4, 3, 6, 7}
	if r != want {
		t.Errorf("RectAround = %v, want %v", r, want)
	}
	if c := r.Center(); c != (Point{5, 5}) {
		t.Errorf("center moved: %v", c)
	}
}

func TestBoundingRect(t *testing.T) {
	if got := BoundingRect(nil); !got.IsEmpty() {
		t.Errorf("BoundingRect(nil) = %v, want empty", got)
	}
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	got := BoundingRect(pts)
	want := Rect{-2, -1, 4, 5}
	if got != want {
		t.Errorf("BoundingRect = %v, want %v", got, want)
	}
	for _, p := range pts {
		if !got.Contains(p) {
			t.Errorf("bounding rect misses %v", p)
		}
	}
}

func TestExtendPoint(t *testing.T) {
	r := EmptyRect().ExtendPoint(Point{1, 2})
	if r.IsEmpty() || !r.Contains(Point{1, 2}) || r.Area() != 0 {
		t.Errorf("single-point rect wrong: %v", r)
	}
	r = r.ExtendPoint(Point{3, 0})
	want := Rect{1, 0, 3, 2}
	if r != want {
		t.Errorf("ExtendPoint = %v, want %v", r, want)
	}
}

func TestContainsRect(t *testing.T) {
	outer := Rect{0, 0, 10, 10}
	if !outer.ContainsRect(outer) {
		t.Error("rect must contain itself")
	}
	if !outer.ContainsRect(Rect{1, 1, 9, 9}) {
		t.Error("must contain inner rect")
	}
	if outer.ContainsRect(Rect{1, 1, 11, 9}) {
		t.Error("must not contain protruding rect")
	}
}

func TestOverlapArea(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	if got := a.OverlapArea(b); got != 4 {
		t.Errorf("OverlapArea = %v, want 4", got)
	}
	if got := a.OverlapArea(Rect{5, 5, 6, 6}); got != 0 {
		t.Errorf("disjoint OverlapArea = %v, want 0", got)
	}
}

func TestStringFormats(t *testing.T) {
	if s := (Point{1.5, 2}).String(); s != "(1.5, 2)" {
		t.Errorf("Point.String = %q", s)
	}
	if s := (Rect{0, 1, 2, 3}).String(); s != "[0,2]x[1,3]" {
		t.Errorf("Rect.String = %q", s)
	}
}

func TestMinDistMatchesBruteForce(t *testing.T) {
	// Compare MinDist against dense sampling of the rectangle boundary.
	r := Rect{2, 3, 7, 9}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		q := Point{rng.Float64()*20 - 5, rng.Float64()*20 - 5}
		best := math.Inf(1)
		const steps = 400
		for s := 0; s <= steps; s++ {
			f := float64(s) / steps
			cands := []Point{
				{r.MinX + f*(r.MaxX-r.MinX), r.MinY},
				{r.MinX + f*(r.MaxX-r.MinX), r.MaxY},
				{r.MinX, r.MinY + f*(r.MaxY-r.MinY)},
				{r.MaxX, r.MinY + f*(r.MaxY-r.MinY)},
			}
			for _, c := range cands {
				if d := q.Dist(c); d < best {
					best = d
				}
			}
		}
		if r.Contains(q) {
			best = 0
		}
		if got := r.MinDist(q); math.Abs(got-best) > 1e-2 {
			t.Fatalf("MinDist(%v) = %v, brute force %v", q, got, best)
		}
	}
}
