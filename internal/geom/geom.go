// Package geom provides the 2-dimensional geometric primitives shared by all
// spatial indices in this repository: points, axis-aligned rectangles, and the
// MINDIST metric of Roussopoulos et al. used for best-first kNN search.
//
// The package deliberately stays tiny and allocation-free: every index hot
// path (block scans, MBR filtering, priority-queue ordering) goes through it.
package geom

import (
	"fmt"
	"math"
)

// Point is a point in 2-dimensional Euclidean space.
type Point struct {
	X, Y float64
}

// Pt is a convenience constructor for Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist2 returns the squared Euclidean distance between p and q.
// Squared distances order identically to distances and avoid the sqrt in
// comparison-heavy paths such as kNN priority queues.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Sqrt(p.Dist2(q))
}

// Less orders points by (X, Y). It is the canonical total order used to
// detect duplicates and to make query results comparable in tests.
func (p Point) Less(q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%g, %g)", p.X, p.Y)
}

// Rect is a closed axis-aligned rectangle [MinX, MaxX] × [MinY, MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		MinX: math.Min(a.X, b.X),
		MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X),
		MaxY: math.Max(a.Y, b.Y),
	}
}

// EmptyRect returns the identity element for Union: a rectangle that contains
// nothing and leaves any rectangle unchanged when united with it.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool {
	return r.MinX > r.MaxX || r.MinY > r.MaxY
}

// RectAround returns the rectangle centered at c with the given full width and
// height. Used by the expanding-region kNN algorithm (Algorithm 3).
func RectAround(c Point, width, height float64) Rect {
	return Rect{
		MinX: c.X - width/2, MinY: c.Y - height/2,
		MaxX: c.X + width/2, MaxY: c.Y + height/2,
	}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether o lies entirely inside r.
func (r Rect) ContainsRect(o Rect) bool {
	return o.MinX >= r.MinX && o.MaxX <= r.MaxX && o.MinY >= r.MinY && o.MaxY <= r.MaxY
}

// Intersects reports whether r and o share at least one point.
func (r Rect) Intersects(o Rect) bool {
	if r.IsEmpty() || o.IsEmpty() {
		return false
	}
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	if r.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, o.MinX),
		MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX),
		MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

// ExtendPoint returns the smallest rectangle containing both r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return Rect{
		MinX: math.Min(r.MinX, p.X),
		MinY: math.Min(r.MinY, p.Y),
		MaxX: math.Max(r.MaxX, p.X),
		MaxY: math.Max(r.MaxY, p.Y),
	}
}

// Intersect returns the intersection of r and o; the result IsEmpty when the
// rectangles do not overlap.
func (r Rect) Intersect(o Rect) Rect {
	return Rect{
		MinX: math.Max(r.MinX, o.MinX),
		MinY: math.Max(r.MinY, o.MinY),
		MaxX: math.Min(r.MaxX, o.MaxX),
		MaxY: math.Min(r.MaxY, o.MaxY),
	}
}

// Area returns the area of r; empty rectangles have zero area.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// Margin returns half the perimeter of r (the R*-tree "margin" measure).
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) + (r.MaxY - r.MinY)
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Width returns the extent of r along the x-axis.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the extent of r along the y-axis.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Enlargement returns how much r's area grows when extended to contain o.
func (r Rect) Enlargement(o Rect) float64 {
	return r.Union(o).Area() - r.Area()
}

// OverlapArea returns the area shared by r and o.
func (r Rect) OverlapArea(o Rect) float64 {
	return r.Intersect(o).Area()
}

// MinDist2 returns the squared MINDIST metric between p and r: the squared
// distance from p to the closest point of r, and 0 when p is inside r.
func (r Rect) MinDist2(p Point) float64 {
	var dx, dy float64
	switch {
	case p.X < r.MinX:
		dx = r.MinX - p.X
	case p.X > r.MaxX:
		dx = p.X - r.MaxX
	}
	switch {
	case p.Y < r.MinY:
		dy = r.MinY - p.Y
	case p.Y > r.MaxY:
		dy = p.Y - r.MaxY
	}
	return dx*dx + dy*dy
}

// MinDist returns the MINDIST metric between p and r.
func (r Rect) MinDist(p Point) float64 {
	return math.Sqrt(r.MinDist2(p))
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// BoundingRect returns the MBR of pts; it is EmptyRect for an empty slice.
func BoundingRect(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}
