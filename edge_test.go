package rsmi_test

// Edge-case coverage for the query surface shared by Index, Concurrent,
// and Sharded (both partitionings): k = 0 and k < 0, k > N, empty
// indexes, and zero-area windows — each verified against the brute-force
// oracle. These are exactly the degenerate requests a network serving
// layer (internal/server) forwards verbatim from untrusted clients, so
// they must be total and correct on every engine.

import (
	"testing"

	"rsmi"
	"rsmi/internal/dataset"
	"rsmi/internal/index"
)

// engine is the query surface shared by all three index types.
type engine interface {
	PointQuery(q rsmi.Point) bool
	WindowQuery(q rsmi.Rect) []rsmi.Point
	ExactWindow(q rsmi.Rect) []rsmi.Point
	KNN(q rsmi.Point, k int) []rsmi.Point
	ExactKNN(q rsmi.Point, k int) []rsmi.Point
	Insert(p rsmi.Point)
	Delete(p rsmi.Point) bool
	Len() int
}

// engines builds each index type over the same points.
func engines(pts []rsmi.Point) map[string]engine {
	opts := rsmi.Options{
		BlockCapacity:      50,
		PartitionThreshold: 500,
		Epochs:             10,
		LearningRate:       0.1,
		Seed:               1,
	}
	sharded := func(p rsmi.Partitioning) *rsmi.Sharded {
		return rsmi.NewSharded(pts, rsmi.ShardOptions{Shards: 4, Partitioning: p, Index: opts})
	}
	return map[string]engine{
		"Index":        rsmi.New(pts, opts),
		"Concurrent":   rsmi.NewConcurrent(pts, opts),
		"ShardedSpace": sharded(rsmi.SpacePartitioned),
		"ShardedHash":  sharded(rsmi.HashPartitioned),
	}
}

func TestKNNEdgeCases(t *testing.T) {
	pts := dataset.Generate(dataset.Skewed, 1500, 81)
	lin := index.NewLinear(pts)
	q := rsmi.Pt(0.4, 0.3)
	for name, e := range engines(pts) {
		name, e := name, e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			// k <= 0 yields empty, never panics.
			for _, k := range []int{0, -1, -1000} {
				if got := e.KNN(q, k); len(got) != 0 {
					t.Fatalf("KNN(k=%d) returned %d points", k, len(got))
				}
				if got := e.ExactKNN(q, k); len(got) != 0 {
					t.Fatalf("ExactKNN(k=%d) returned %d points", k, len(got))
				}
			}
			// k > N: ExactKNN returns every point, distance-matched to the
			// oracle; approximate KNN returns at most N real points, sorted.
			truth := lin.KNN(q, len(pts)+100)
			exact := e.ExactKNN(q, len(pts)+100)
			if len(exact) != len(pts) {
				t.Fatalf("ExactKNN(k>N) returned %d points, want %d", len(exact), len(pts))
			}
			for i := range exact {
				if q.Dist2(exact[i]) != q.Dist2(truth[i]) {
					t.Fatalf("ExactKNN(k>N) distance %d: got %v want %v",
						i, q.Dist2(exact[i]), q.Dist2(truth[i]))
				}
			}
			approx := e.KNN(q, len(pts)+100)
			if len(approx) > len(pts) {
				t.Fatalf("KNN(k>N) returned %d points for %d indexed", len(approx), len(pts))
			}
			for i, p := range approx {
				if !lin.PointQuery(p) {
					t.Fatalf("KNN(k>N) returned non-indexed point %v", p)
				}
				if i > 0 && q.Dist2(approx[i-1]) > q.Dist2(p) {
					t.Fatalf("KNN(k>N) results unsorted at %d", i)
				}
			}
			// k == N is exact for ExactKNN too.
			if got := e.ExactKNN(q, len(pts)); len(got) != len(pts) {
				t.Fatalf("ExactKNN(k=N) returned %d points", len(got))
			}
		})
	}
}

func TestZeroAreaWindow(t *testing.T) {
	pts := dataset.Generate(dataset.Uniform, 1500, 83)
	lin := index.NewLinear(pts)
	for name, e := range engines(pts) {
		name, e := name, e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			// A zero-area window on an indexed point: the oracle returns
			// exactly that point; ExactWindow must match it, WindowQuery
			// may only ever return it (no false positives).
			target := pts[123]
			degen := rsmi.NewRect(target, target)
			truth := lin.WindowQuery(degen)
			if len(truth) != 1 || truth[0] != target {
				t.Fatalf("oracle on degenerate window: %v", truth)
			}
			exact := e.ExactWindow(degen)
			if len(exact) != 1 || exact[0] != target {
				t.Fatalf("ExactWindow(zero-area) = %v, want [%v]", exact, target)
			}
			for _, p := range e.WindowQuery(degen) {
				if p != target {
					t.Fatalf("WindowQuery(zero-area) returned foreign point %v", p)
				}
			}
			// A zero-area window on empty space returns nothing.
			empty := rsmi.NewRect(rsmi.Pt(-0.5, -0.5), rsmi.Pt(-0.5, -0.5))
			if got := e.ExactWindow(empty); len(got) != 0 {
				t.Fatalf("ExactWindow on empty location returned %d points", len(got))
			}
			if got := e.WindowQuery(empty); len(got) != 0 {
				t.Fatalf("WindowQuery on empty location returned %d points", len(got))
			}
			// Zero-width (line) window: oracle equivalence for the exact
			// variant, no false positives for the approximate one.
			line := rsmi.NewRect(rsmi.Pt(target.X, 0), rsmi.Pt(target.X, 1))
			truth = lin.WindowQuery(line)
			exact = e.ExactWindow(line)
			if index.Recall(exact, truth) != 1 || len(exact) != len(truth) {
				t.Fatalf("ExactWindow(line) returned %d points, oracle %d", len(exact), len(truth))
			}
			for _, p := range e.WindowQuery(line) {
				if !line.Contains(p) {
					t.Fatalf("WindowQuery(line) false positive %v", p)
				}
			}
		})
	}
}

func TestEmptyIndexEdgeCases(t *testing.T) {
	for name, e := range engines(nil) {
		name, e := name, e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if e.Len() != 0 {
				t.Fatalf("Len = %d", e.Len())
			}
			q := rsmi.Pt(0.5, 0.5)
			if e.PointQuery(q) {
				t.Fatal("PointQuery on empty index found a point")
			}
			whole := rsmi.NewRect(rsmi.Pt(0, 0), rsmi.Pt(1, 1))
			if got := e.WindowQuery(whole); len(got) != 0 {
				t.Fatalf("WindowQuery on empty index returned %d", len(got))
			}
			if got := e.ExactWindow(whole); len(got) != 0 {
				t.Fatalf("ExactWindow on empty index returned %d", len(got))
			}
			for _, k := range []int{0, 1, 10} {
				if got := e.KNN(q, k); len(got) != 0 {
					t.Fatalf("KNN(k=%d) on empty index returned %d", k, len(got))
				}
				if got := e.ExactKNN(q, k); len(got) != 0 {
					t.Fatalf("ExactKNN(k=%d) on empty index returned %d", k, len(got))
				}
			}
			if e.Delete(q) {
				t.Fatal("Delete on empty index succeeded")
			}
			// The empty index accepts inserts and then answers queries.
			e.Insert(q)
			if !e.PointQuery(q) || e.Len() != 1 {
				t.Fatal("insert into empty index lost")
			}
			if got := e.ExactKNN(q, 5); len(got) != 1 || got[0] != q {
				t.Fatalf("ExactKNN after first insert: %v", got)
			}
		})
	}
}
