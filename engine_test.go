package rsmi_test

// Cross-engine tests of the v2 rsmi.Engine API: every backend — learned
// engines and baseline adapters alike — must honour contexts, agree with
// its own context-free methods, and (for the baselines) answer exactly.

import (
	"context"
	"testing"

	"rsmi"
	"rsmi/internal/dataset"
	"rsmi/internal/index"
	"rsmi/internal/workload"
)

// v2Engines builds every Engine implementation over the same points.
func v2Engines(t *testing.T, pts []rsmi.Point) map[string]rsmi.Engine {
	t.Helper()
	opts := rsmi.Options{
		BlockCapacity:      50,
		PartitionThreshold: 500,
		Epochs:             10,
		LearningRate:       0.1,
		Seed:               1,
	}
	grid, err := rsmi.NewBaselineEngine("grid", pts)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]rsmi.Engine{
		"Index":      rsmi.New(pts, opts),
		"Concurrent": rsmi.NewConcurrent(pts, opts),
		"Sharded":    rsmi.NewSharded(pts, rsmi.ShardOptions{Shards: 3, Index: opts}),
		"rstar":      rsmi.NewRStarEngine(pts, 0),
		"grid":       grid,
		"kdb":        rsmi.NewKDBEngine(pts, 0),
	}
}

// TestEngineCancelledContext checks every engine fails fast on a
// cancelled context, for every method of the interface.
func TestEngineCancelledContext(t *testing.T) {
	pts := dataset.Generate(dataset.Skewed, 1000, 5)
	q := rsmi.RectAround(pts[0], 0.1, 0.1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, eng := range v2Engines(t, pts) {
		if _, err := eng.PointQueryContext(ctx, pts[0]); err != context.Canceled {
			t.Errorf("%s PointQueryContext: %v", name, err)
		}
		if _, err := eng.WindowQueryContext(ctx, q); err != context.Canceled {
			t.Errorf("%s WindowQueryContext: %v", name, err)
		}
		if _, err := eng.WindowQueryAppend(ctx, nil, q); err != context.Canceled {
			t.Errorf("%s WindowQueryAppend: %v", name, err)
		}
		if _, err := eng.ExactWindowContext(ctx, q); err != context.Canceled {
			t.Errorf("%s ExactWindowContext: %v", name, err)
		}
		if _, err := eng.KNNContext(ctx, pts[0], 5); err != context.Canceled {
			t.Errorf("%s KNNContext: %v", name, err)
		}
		if _, err := eng.ExactKNNContext(ctx, pts[0], 5); err != context.Canceled {
			t.Errorf("%s ExactKNNContext: %v", name, err)
		}
		if _, err := eng.BatchPointQueryContext(ctx, pts[:4]); err != context.Canceled {
			t.Errorf("%s BatchPointQueryContext: %v", name, err)
		}
		if _, err := eng.BatchWindowQueryContext(ctx, []rsmi.Rect{q}); err != context.Canceled {
			t.Errorf("%s BatchWindowQueryContext: %v", name, err)
		}
		if _, err := eng.BatchKNNContext(ctx, []rsmi.KNNQuery{{Q: pts[0], K: 3}}); err != context.Canceled {
			t.Errorf("%s BatchKNNContext: %v", name, err)
		}
		if err := eng.InsertContext(ctx, rsmi.Pt(0.5, 0.5)); err != context.Canceled {
			t.Errorf("%s InsertContext: %v", name, err)
		}
		if _, err := eng.DeleteContext(ctx, pts[0]); err != context.Canceled {
			t.Errorf("%s DeleteContext: %v", name, err)
		}
		if err := eng.RebuildContext(ctx); err != context.Canceled {
			t.Errorf("%s RebuildContext: %v", name, err)
		}
		if eng.Len() != len(pts) {
			t.Errorf("%s: cancelled writes changed Len to %d", name, eng.Len())
		}
	}
}

// TestEngineContextMatchesLegacy checks that with a background context
// every engine's context variants agree with its context-free methods,
// and that the whole v2 surface round-trips writes.
func TestEngineContextMatchesLegacy(t *testing.T) {
	pts := dataset.Generate(dataset.Skewed, 1000, 7)
	ctx := context.Background()
	wins := workload.Windows(pts, 5, 0.01, 1, 8)
	for name, eng := range v2Engines(t, pts) {
		for _, q := range wins {
			got, err := eng.WindowQueryContext(ctx, q)
			if err != nil {
				t.Fatalf("%s WindowQueryContext: %v", name, err)
			}
			appended, err := eng.WindowQueryAppend(ctx, nil, q)
			if err != nil || len(appended) != len(got) {
				t.Fatalf("%s WindowQueryAppend: %d points, %v; want %d", name, len(appended), err, len(got))
			}
			batch, err := eng.BatchWindowQueryContext(ctx, []rsmi.Rect{q})
			if err != nil || len(batch[0]) != len(got) {
				t.Fatalf("%s BatchWindowQueryContext: %d points, %v; want %d", name, len(batch[0]), err, len(got))
			}
		}
		knn, err := eng.KNNContext(ctx, pts[3], 7)
		if err != nil || len(knn) != 7 {
			t.Fatalf("%s KNNContext: %d points, %v", name, len(knn), err)
		}
		found, err := eng.PointQueryContext(ctx, pts[0])
		if err != nil || !found {
			t.Fatalf("%s PointQueryContext(indexed) = %v, %v", name, found, err)
		}

		// Insert / query / delete through the v2 surface.
		p := rsmi.Pt(0.31415, 0.92653)
		if err := eng.InsertContext(ctx, p); err != nil {
			t.Fatalf("%s InsertContext: %v", name, err)
		}
		if found, _ := eng.PointQueryContext(ctx, p); !found {
			t.Fatalf("%s: inserted point not found", name)
		}
		deleted, err := eng.DeleteContext(ctx, p)
		if err != nil || !deleted {
			t.Fatalf("%s DeleteContext = %v, %v", name, deleted, err)
		}
		if err := eng.RebuildContext(ctx); err != nil {
			t.Fatalf("%s RebuildContext: %v", name, err)
		}
		if eng.Len() != len(pts) {
			t.Fatalf("%s: Len = %d after rebuild, want %d", name, eng.Len(), len(pts))
		}
	}
}

// TestBaselineEnginesExact checks the baseline adapters answer window and
// kNN queries exactly (recall 1 against the brute-force oracle) — they
// adapt exact indexes and must not lose that property.
func TestBaselineEnginesExact(t *testing.T) {
	pts := dataset.Generate(dataset.Skewed, 1500, 9)
	oracle := index.NewLinear(pts)
	ctx := context.Background()
	for _, name := range []string{"rstar", "grid", "kdb"} {
		eng, err := rsmi.NewBaselineEngine(name, pts)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range workload.Windows(pts, 8, 0.005, 1, 10) {
			got, err := eng.WindowQueryContext(ctx, q)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want := oracle.WindowQuery(q)
			if r := index.Recall(got, want); r != 1 {
				t.Fatalf("%s window recall %.3f (got %d, want %d)", name, r, len(got), len(want))
			}
			if len(got) != len(want) {
				t.Fatalf("%s window returned %d points, oracle %d (false positives?)", name, len(got), len(want))
			}
		}
		got, err := eng.KNNContext(ctx, pts[11], 10)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle.KNN(pts[11], 10)
		if r := index.KNNRecall(got, want, pts[11]); r != 1 {
			t.Fatalf("%s kNN recall %.3f", name, r)
		}
	}
	if _, err := rsmi.NewBaselineEngine("btree", pts); err == nil {
		t.Fatal("unknown baseline name accepted")
	}
}
