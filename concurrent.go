package rsmi

import (
	"context"
	"sync"
)

// Concurrent wraps an Index for concurrent use: queries take a shared
// (read) lock and may run in parallel; updates take an exclusive lock.
//
// The underlying RSMI's query paths are read-only apart from atomic
// block-access counters and the per-prediction scratch buffers, which are
// allocation-local, so shared-lock parallel queries are safe. The paper
// benchmarks single-threaded (§6.1); this wrapper is a library convenience,
// not part of the reproduction.
type Concurrent struct {
	mu  sync.RWMutex
	idx *Index
}

// NewConcurrent builds an RSMI and wraps it for concurrent use.
func NewConcurrent(pts []Point, opts Options) *Concurrent {
	return &Concurrent{idx: New(pts, opts)}
}

// WrapConcurrent wraps an existing index. The caller must not use idx
// directly afterwards.
func WrapConcurrent(idx *Index) *Concurrent {
	return &Concurrent{idx: idx}
}

// PointQuery reports whether a point with q's exact coordinates is indexed.
//
// Deprecated: use PointQueryContext instead; the context-free form wraps
// it with context.Background().
func (c *Concurrent) PointQuery(q Point) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.PointQuery(q)
}

// WindowQuery returns the indexed points inside the window (approximate, no
// false positives).
//
// Deprecated: use WindowQueryContext instead; the context-free form wraps
// it with context.Background().
func (c *Concurrent) WindowQuery(q Rect) []Point {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.WindowQuery(q)
}

// ExactWindow returns the exact window answer (RSMIa traversal).
//
// Deprecated: use ExactWindowContext instead; the context-free form wraps
// it with context.Background().
func (c *Concurrent) ExactWindow(q Rect) []Point {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.ExactWindow(q)
}

// KNN returns up to k approximate nearest neighbours, closest first.
//
// Deprecated: use KNNContext instead; the context-free form wraps
// it with context.Background().
func (c *Concurrent) KNN(q Point, k int) []Point {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.KNN(q, k)
}

// ExactKNN returns the exact k nearest neighbours (best-first traversal).
//
// Deprecated: use ExactKNNContext instead; the context-free form wraps
// it with context.Background().
func (c *Concurrent) ExactKNN(q Point, k int) []Point {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.ExactKNN(q, k)
}

// BatchPointQuery answers one point query per element of qs under a single
// read-lock acquisition, amortising the lock overhead across the batch.
// Answers are identical to calling PointQuery per element.
//
// Deprecated: use BatchPointQueryContext instead; the context-free form wraps
// it with context.Background().
func (c *Concurrent) BatchPointQuery(qs []Point) []bool {
	out := make([]bool, len(qs))
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, q := range qs {
		out[i] = c.idx.PointQuery(q)
	}
	return out
}

// BatchWindowQuery answers one window query per element of qs under a
// single read-lock acquisition. Answers are identical to calling
// WindowQuery per element.
//
// Deprecated: use BatchWindowQueryContext instead; the context-free form wraps
// it with context.Background().
func (c *Concurrent) BatchWindowQuery(qs []Rect) [][]Point {
	out := make([][]Point, len(qs))
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, q := range qs {
		out[i] = c.idx.WindowQuery(q)
	}
	return out
}

// BatchKNN answers one kNN query per element of qs under a single
// read-lock acquisition. Answers are identical to calling KNN per element.
//
// Deprecated: use BatchKNNContext instead; the context-free form wraps
// it with context.Background().
func (c *Concurrent) BatchKNN(qs []KNNQuery) [][]Point {
	out := make([][]Point, len(qs))
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, q := range qs {
		out[i] = c.idx.KNN(q.Q, q.K)
	}
	return out
}

// Insert adds a point.
//
// Deprecated: use InsertContext instead; the context-free form wraps
// it with context.Background().
func (c *Concurrent) Insert(p Point) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idx.Insert(p)
}

// Delete removes the point with p's exact coordinates.
//
// Deprecated: use DeleteContext instead; the context-free form wraps
// it with context.Background().
func (c *Concurrent) Delete(p Point) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx.Delete(p)
}

// Rebuild reconstructs the index from its live points (§5's periodic
// rebuild), blocking all other operations for the duration.
//
// Deprecated: use RebuildContext instead; the context-free form wraps
// it with context.Background().
func (c *Concurrent) Rebuild() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idx.Rebuild()
}

// Len returns the number of live points.
func (c *Concurrent) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.Len()
}

// Stats returns structural statistics.
func (c *Concurrent) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.Stats()
}

// Name identifies the backend in stats and bench reports.
func (c *Concurrent) Name() string { return "Concurrent" }

// The context-aware Engine surface. One lock acquisition covers one
// query, which then runs in microseconds on the calling goroutine, so —
// like Index — cancellation is observed at entry (and between elements of
// the batch variants), not mid-query.

// PointQueryContext is PointQuery honouring ctx at entry.
func (c *Concurrent) PointQueryContext(ctx context.Context, q Point) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return c.PointQuery(q), nil
}

// WindowQueryContext is WindowQuery honouring ctx at entry.
func (c *Concurrent) WindowQueryContext(ctx context.Context, q Rect) ([]Point, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.WindowQuery(q), nil
}

// WindowQueryAppend appends the window answer to dst under the read lock,
// for callers that reuse result buffers across queries.
func (c *Concurrent) WindowQueryAppend(ctx context.Context, dst []Point, q Rect) ([]Point, error) {
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.WindowQueryAppend(ctx, dst, q)
}

// ExactWindowContext is ExactWindow honouring ctx at entry.
func (c *Concurrent) ExactWindowContext(ctx context.Context, q Rect) ([]Point, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.ExactWindow(q), nil
}

// KNNContext is KNN honouring ctx at entry.
func (c *Concurrent) KNNContext(ctx context.Context, q Point, k int) ([]Point, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.KNN(q, k), nil
}

// ExactKNNContext is ExactKNN honouring ctx at entry.
func (c *Concurrent) ExactKNNContext(ctx context.Context, q Point, k int) ([]Point, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.ExactKNN(q, k), nil
}

// BatchPointQueryContext is BatchPointQuery observing ctx between
// elements, under a single read-lock acquisition.
func (c *Concurrent) BatchPointQueryContext(ctx context.Context, qs []Point) ([]bool, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.BatchPointQueryContext(ctx, qs)
}

// BatchWindowQueryContext is BatchWindowQuery observing ctx between
// elements, under a single read-lock acquisition.
func (c *Concurrent) BatchWindowQueryContext(ctx context.Context, qs []Rect) ([][]Point, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.BatchWindowQueryContext(ctx, qs)
}

// BatchKNNContext is BatchKNN observing ctx between elements, under a
// single read-lock acquisition.
func (c *Concurrent) BatchKNNContext(ctx context.Context, qs []KNNQuery) ([][]Point, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.BatchKNNContext(ctx, qs)
}

// InsertContext is Insert honouring ctx at entry; an admitted insert
// always completes.
func (c *Concurrent) InsertContext(ctx context.Context, p Point) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Insert(p)
	return nil
}

// DeleteContext is Delete honouring ctx at entry.
func (c *Concurrent) DeleteContext(ctx context.Context, p Point) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return c.Delete(p), nil
}

// RebuildContext is Rebuild honouring ctx at entry; a started rebuild
// runs to completion behind the write lock.
func (c *Concurrent) RebuildContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Rebuild()
	return nil
}

// Accesses returns block accesses since the last reset (the paper's
// external-memory cost indicator, aggregated across all queries).
func (c *Concurrent) Accesses() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.Accesses()
}

// ResetAccesses zeroes the block-access counter.
func (c *Concurrent) ResetAccesses() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.idx.ResetAccesses()
}
