module rsmi

go 1.24
