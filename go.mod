module rsmi

go 1.23
