package rsmi_test

import (
	"fmt"
	"sync"

	"rsmi"
)

// gridPoints returns a deterministic 40×25 lattice in the unit square, small
// enough that the examples build in well under a second.
func gridPoints() []rsmi.Point {
	var pts []rsmi.Point
	for i := 0; i < 40; i++ {
		for j := 0; j < 25; j++ {
			pts = append(pts, rsmi.Pt(float64(i)/40, float64(j)/25))
		}
	}
	return pts
}

// exampleOptions trains quickly; the zero value rsmi.Options{} selects the
// paper's full 500-epoch training instead.
func exampleOptions() rsmi.Options {
	return rsmi.Options{Epochs: 20, LearningRate: 0.1, Seed: 1}
}

func ExampleNew() {
	idx := rsmi.New(gridPoints(), exampleOptions())

	// Point queries are exact: no false negatives, no false positives.
	fmt.Println(idx.Len(), idx.PointQuery(rsmi.Pt(0.5, 0.2)), idx.PointQuery(rsmi.Pt(0.5001, 0.2)))
	// Output: 1000 true false
}

func ExampleIndex_WindowQuery() {
	idx := rsmi.New(gridPoints(), exampleOptions())
	w := rsmi.NewRect(rsmi.Pt(0.2, 0.2), rsmi.Pt(0.4, 0.4))

	// WindowQuery is approximate with no false positives; AsExact gives the
	// exact answer via MBR traversal (the paper's RSMIa variant).
	approx := idx.WindowQuery(w)
	exact := idx.AsExact().WindowQuery(w)
	noFalsePositives := true
	for _, p := range approx {
		if !w.Contains(p) {
			noFalsePositives = false
		}
	}
	fmt.Println(len(exact), noFalsePositives, len(approx) <= len(exact))
	// Output: 54 true true
}

func ExampleNewConcurrent() {
	c := rsmi.NewConcurrent(gridPoints(), exampleOptions())

	// Queries take a shared lock and run in parallel; updates are exclusive.
	var wg sync.WaitGroup
	var found int64
	var mu sync.Mutex
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hits := 0
			for i := 0; i < 250; i++ {
				if c.PointQuery(rsmi.Pt(float64((g*250+i)/25)/40, float64(i%25)/25)) {
					hits++
				}
			}
			mu.Lock()
			found += int64(hits)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	c.Insert(rsmi.Pt(0.5001, 0.2001))
	fmt.Println(found, c.Len())
	// Output: 1000 1001
}

func ExampleSharded() {
	// Partition the data across 4 RSMI shards; queries fan out in parallel
	// and updates lock only the owning shard.
	s := rsmi.NewSharded(gridPoints(), rsmi.ShardOptions{
		Shards: 4,
		Index:  exampleOptions(),
	})

	w := rsmi.NewRect(rsmi.Pt(0.2, 0.2), rsmi.Pt(0.4, 0.4))
	nn := s.ExactKNN(rsmi.Pt(0.5, 0.2), 3)
	fmt.Println(s.NumShards(), s.Len(), s.PointQuery(rsmi.Pt(0.5, 0.2)), len(s.ExactWindow(w)), len(nn))
	// Output: 4 1000 true 54 3
}
