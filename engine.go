package rsmi

// The v2 query API: one context-aware, error-returning interface over the
// RSMI engines *and* the paper's baseline indexes, so the serving stack
// (internal/server, cmd/rsmi-serve) can put any backend behind the same
// HTTP/binary/TCP endpoints. "The Case for Learned Spatial Indexes"
// (Pandey et al., 2020) and "Evaluating Learned Spatial Indexes" (Pai et
// al.) both argue that learned spatial indexes must be compared inside a
// full query-processing pipeline under identical harnesses — this
// interface is that harness's contract.
//
// Every method takes a context.Context and returns an error, which is
// non-nil only when the context is cancelled or past its deadline.
// Sharded observes cancellation *between shard visits* of its fan-outs
// (window, kNN, batches) and between shard retrains of a rolling rebuild;
// Index, Concurrent, and the baseline adapters execute a single query in
// microseconds and check the context at entry (batch variants also check
// between elements).
//
// The context-free methods (PointQuery(q) bool, …) remain on every
// concrete type as thin compatibility wrappers over the context variants
// with context.Background(), so existing callers migrate incrementally.
// They are deprecated: new code should call the *Context forms, and each
// wrapper's godoc carries a "Deprecated:" pointer to its replacement.

import (
	"context"
)

// Engine is the context-aware queryable surface shared by every backend:
// Index, Concurrent, Sharded, and the baseline adapters (NewRStarEngine,
// NewGridFileEngine, NewKDBEngine). It is the contract the serving layer
// (internal/server) executes against.
//
// Answer semantics are the concrete type's: RSMI-backed engines answer
// window and kNN queries approximately (no false positives; the Exact
// variants are exact), baseline-backed engines answer everything exactly,
// with ExactWindowContext ≡ WindowQueryContext.
type Engine interface {
	// Name identifies the backend ("Sharded", "RSMI", "RR*", "Grid",
	// "KDB", …) in stats and bench reports.
	Name() string

	PointQueryContext(ctx context.Context, q Point) (bool, error)
	WindowQueryContext(ctx context.Context, q Rect) ([]Point, error)
	// WindowQueryAppend appends the window answer to dst and returns the
	// extended slice, so callers reusing result buffers across queries
	// avoid the per-query allocation. On error dst is returned unextended.
	WindowQueryAppend(ctx context.Context, dst []Point, q Rect) ([]Point, error)
	ExactWindowContext(ctx context.Context, q Rect) ([]Point, error)
	KNNContext(ctx context.Context, q Point, k int) ([]Point, error)
	ExactKNNContext(ctx context.Context, q Point, k int) ([]Point, error)

	// The batch set amortises per-call overhead (locks, fan-out
	// hand-offs) across many queries; answers are element-wise identical
	// to the single-query methods.
	BatchPointQueryContext(ctx context.Context, qs []Point) ([]bool, error)
	BatchWindowQueryContext(ctx context.Context, qs []Rect) ([][]Point, error)
	BatchKNNContext(ctx context.Context, qs []KNNQuery) ([][]Point, error)

	InsertContext(ctx context.Context, p Point) error
	DeleteContext(ctx context.Context, p Point) (bool, error)
	// RebuildContext retrains learned engines from their live points; on
	// baseline adapters it is a no-op (there is nothing to retrain).
	RebuildContext(ctx context.Context) error

	Len() int
	Stats() Stats
	Accesses() int64
	ResetAccesses()
}

// Every engine implements the v2 API, the baseline adapters included
// (their assertions live in baseline.go).
var (
	_ Engine = (*Index)(nil)
	_ Engine = (*Concurrent)(nil)
	_ Engine = (*Sharded)(nil)
)
